"""The coordinator: query broadcast and answer concatenation (Section 4).

"As queries arrive from different clients, they are broadcast by the
coordinator to all nodes, with each node querying its data.  The individual
query responses from each structure are concatenated by the coordinator node
and sent back to the user."

Per-node wall-clock is measured for every query so the Figure 9 load-balance
ratio (max/avg ≤ 1.3) can be reported; the network model charges the query
broadcast (sparse vector bytes per node) and each node's response (12 bytes
per match: global id + distance), which yields the paper's "communication is
<1 % of overall runtime" accounting.
"""

from __future__ import annotations

import time

import numpy as np

from repro.cluster.network import NetworkModel
from repro.cluster.node import ClusterNode
from repro.core.query import QueryResult
from repro.sparse.csr import CSRMatrix

__all__ = ["Coordinator", "BroadcastOutcome"]


class BroadcastOutcome:
    """One broadcast query: merged result + per-node timing and comm cost."""

    def __init__(
        self,
        result: QueryResult,
        node_seconds: dict[int, float],
        network_seconds: float,
    ) -> None:
        self.result = result
        self.node_seconds = node_seconds
        self.network_seconds = network_seconds

    @property
    def critical_path_seconds(self) -> float:
        """Modeled parallel latency: slowest node + communication."""
        slowest = max(self.node_seconds.values()) if self.node_seconds else 0.0
        return slowest + self.network_seconds


class Coordinator:
    """Broadcasts queries to cluster nodes and merges partial answers."""

    #: bytes per reported match in a node response: int64 id + float32 dist.
    RESPONSE_BYTES_PER_MATCH = 12
    #: fixed header per message.
    MESSAGE_HEADER_BYTES = 64

    def __init__(self, nodes: list[ClusterNode], network: NetworkModel) -> None:
        self.nodes = nodes
        self.network = network

    def node_stats(self) -> list[dict]:
        """Per-node monitoring rows (sizes, deletions, merge state).

        ``merge_in_flight`` reports nodes currently overlapping a
        delta→static merge with query serving; the broadcast path needs
        no special casing for them — every node keeps answering against
        ``static + frozen + fresh`` with stable local ids, so merged
        broadcast answers are bit-identical whether or not any node is
        mid-merge.
        """
        return [node.stats() for node in self.nodes]

    def query(
        self,
        q_cols: np.ndarray,
        q_vals: np.ndarray,
        *,
        radius: float | None = None,
    ) -> BroadcastOutcome:
        """Broadcast one query and concatenate every node's answer."""
        q_cols = np.asarray(q_cols, dtype=np.int64)
        q_vals = np.asarray(q_vals, dtype=np.float32)
        query_bytes = self.MESSAGE_HEADER_BYTES + 12 * q_cols.size  # id+weight per term

        net_seconds = 0.0
        node_seconds: dict[int, float] = {}
        ids: list[np.ndarray] = []
        dists: list[np.ndarray] = []
        for node in self.nodes:
            if node.n_items == 0:
                continue
            net_seconds += self.network.send(query_bytes)
            start = time.perf_counter()
            res = node.query(q_cols, q_vals, radius=radius)
            node_seconds[node.node_id] = time.perf_counter() - start
            net_seconds += self.network.send(
                self.MESSAGE_HEADER_BYTES
                + self.RESPONSE_BYTES_PER_MATCH * len(res)
            )
            ids.append(res.indices)
            dists.append(res.distances)

        if ids:
            merged = QueryResult(np.concatenate(ids), np.concatenate(dists))
        else:
            merged = QueryResult(
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32)
            )
        return BroadcastOutcome(merged, node_seconds, net_seconds)

    def query_batch(
        self,
        queries: CSRMatrix,
        *,
        radius: float | None = None,
        mode: str | None = None,
        workers: int | None = None,
        backend: str | None = None,
    ) -> list[BroadcastOutcome]:
        """Broadcast a whole query batch to every node.

        ``mode="vectorized"`` (the default) ships the batch to each node as
        one message and runs the node's vectorized batch kernel, so the
        per-node cost is one kernel invocation instead of B pipeline runs;
        per-query ``BroadcastOutcome``s report the amortized (1/B) share of
        each node's batch wall-clock and of the network cost, which keeps
        the Figure 9 load-balance ratio (max/avg over nodes) meaningful.
        ``mode="loop"`` broadcasts query-by-query as before, and is always
        serial — ``workers``/``backend`` apply to the vectorized path only.

        ``workers > 1`` shards each node's vectorized batch across cores
        through that node's persistent worker pool (the paper's two-level
        parallelism: across nodes, then across threads within a node);
        worker stage times fold into each node's engine stats.
        """
        if mode is None:
            mode = "vectorized"
        if mode == "loop":
            return [
                self.query(*queries.row(r), radius=radius)
                for r in range(queries.n_rows)
            ]
        if mode != "vectorized":
            raise ValueError(
                f"unknown mode {mode!r}; expected 'vectorized' or 'loop'"
            )
        n = queries.n_rows
        if n == 0:
            return []
        # One broadcast message per node carries the whole CSR batch.
        batch_bytes = self.MESSAGE_HEADER_BYTES + 12 * queries.nnz

        net_seconds = 0.0
        node_batch_seconds: dict[int, float] = {}
        per_node: list[list[QueryResult]] = []
        for node in self.nodes:
            if node.n_items == 0:
                continue
            net_seconds += self.network.send(batch_bytes)
            start = time.perf_counter()
            results = node.query_batch(
                queries, radius=radius, workers=workers, backend=backend
            )
            node_batch_seconds[node.node_id] = time.perf_counter() - start
            n_matches = sum(len(res) for res in results)
            net_seconds += self.network.send(
                self.MESSAGE_HEADER_BYTES
                + self.RESPONSE_BYTES_PER_MATCH * n_matches
            )
            per_node.append(results)

        share = {nid: secs / n for nid, secs in node_batch_seconds.items()}
        net_share = net_seconds / n
        outcomes: list[BroadcastOutcome] = []
        for r in range(n):
            parts = [results[r] for results in per_node]
            if parts:
                merged = QueryResult(
                    np.concatenate([p.indices for p in parts]),
                    np.concatenate([p.distances for p in parts]),
                )
            else:
                merged = QueryResult(
                    np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32)
                )
            outcomes.append(BroadcastOutcome(merged, dict(share), net_share))
        return outcomes
