"""Ablation — PLSH's delta design vs the rejected circular-bucket scheme.

Section 6 rejects the Petrovic-style alternative ("circular queues to store
LSH buckets, overwriting elements when buckets overflow") because items
decay out of *some* buckets (hurting recall unpredictably) and expiration
time is undefined.  Section 6.1 likewise rejects a plain append-only array
("2x slowdown with only eta = 1% of the data in the delta table").

This bench quantifies the circular scheme against PLSH's delta+merge on the
same stream: recall of recent items, residual presence of items that should
have expired, and mean residency of old points (fraction of their L buckets
they still occupy).  Shape to check: the circular scheme loses recall on
old-but-live items and keeps ghosts of items past their nominal horizon,
while PLSH answers match a static oracle exactly.
"""

from __future__ import annotations

import numpy as np

from repro.bench.reporting import format_table, print_section
from repro.params import PLSHParams
from repro.streaming.circular import CircularBucketLSH
from repro.streaming.node import StreamingPLSH


def _recall_of_window(index, queries_csr, truth_sets) -> float:
    found = total = 0
    for r in range(queries_csr.n_rows):
        res = index.query(*queries_csr.row(r))
        got = set(res.indices.tolist())
        total += len(truth_sets[r])
        found += len(truth_sets[r] & got)
    return found / max(total, 1)


def test_ablation_streaming_designs(benchmark, twitter, scale):
    params = scale.params()
    vectors = twitter.vectors
    n = min(vectors.n_rows, 40_000)
    data = vectors.slice_rows(0, n)
    half = n // 2

    plsh = StreamingPLSH(
        vectors.n_cols, params, capacity=n, delta_fraction=0.1
    )
    circ = CircularBucketLSH(
        vectors.n_cols, params, bucket_capacity=4, hasher=plsh.hasher
    )
    batch = max(n // 20, 1)
    for start in range(0, n, batch):
        block = data.slice_rows(start, min(start + batch, n))
        plsh.insert_batch(block)
        circ.insert_batch(block)

    benchmark.pedantic(
        lambda: plsh.query(*data.row(0)), rounds=3, iterations=1
    )

    # Recall on self-queries: every inserted row must find itself.  Old rows
    # (first half) vs new rows (second half) show the circular decay.
    rng = np.random.default_rng(5)
    old_ids = rng.choice(half, size=50, replace=False)
    new_ids = rng.choice(np.arange(half, n), size=50, replace=False)

    def self_recall(index, ids) -> float:
        hits = 0
        for i in ids.tolist():
            res = index.query(*data.row(i))
            hits += int(i in res.indices.tolist())
        return hits / ids.size

    plsh_old, plsh_new = self_recall(plsh, old_ids), self_recall(plsh, new_ids)
    circ_old, circ_new = self_recall(circ, old_ids), self_recall(circ, new_ids)
    residency_old = float(
        np.mean([circ.residency(int(i)) for i in old_ids[:20]])
    )
    residency_new = float(
        np.mean([circ.residency(int(i)) for i in new_ids[:20]])
    )

    rows = [
        ["PLSH delta+merge", plsh_old, plsh_new, 1.0, 1.0],
        ["circular buckets", circ_old, circ_new, residency_old, residency_new],
    ]
    print_section(
        f"Ablation — streaming designs (N={n:,}, bucket cap=4, "
        f"{circ.n_overwrites:,} overwrites)",
        format_table(
            ["design", "self-recall old", "self-recall new",
             "residency old", "residency new"],
            rows,
        )
        + "\npaper: circular buckets give ill-defined expiration and reduced"
          " accuracy for older points; PLSH keeps exact semantics",
    )

    # PLSH must keep perfect self-recall regardless of age.
    assert plsh_old == 1.0 and plsh_new == 1.0
    # The circular scheme must show age-dependent decay in bucket residency.
    assert residency_old < residency_new + 1e-9
    assert circ_old <= circ_new + 1e-9