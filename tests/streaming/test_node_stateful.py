"""Stateful property test: a StreamingPLSH node against a plain model.

Hypothesis drives random interleavings of insert / merge (blocking *and*
overlapped begin/commit) / delete / retire / query against a tiny node,
checking after every step that queries agree with a brute-force oracle
over the model's live rows.  This is the failure-injection net for the
streaming state machine: id stability across merges (including mid-merge,
while a frozen delta is being folded in on the background thread),
deletion persistence, retirement resets.

The seeded random-ops harness in ``test_node_random_ops.py`` complements
this machine with exact parity checks against the synchronous-merge path
and a deterministic shrinker.
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core.distance import angular_distance
from repro.params import PLSHParams
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import densify_query, row_dots_dense
from repro.streaming.node import StreamingPLSH

DIM = 64
CAPACITY = 120
PARAMS = PLSHParams(k=4, m=4, radius=1.2, seed=321)
_RNG = np.random.default_rng(999)
# A fixed pool of unit rows the machine draws inserts from.
_POOL_DENSE = _RNG.standard_normal((CAPACITY, DIM)).astype(np.float32)
_POOL_DENSE /= np.linalg.norm(_POOL_DENSE, axis=1, keepdims=True)
_POOL = CSRMatrix.from_dense(_POOL_DENSE)


class StreamingNodeMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.node = StreamingPLSH(
            DIM, PARAMS, capacity=CAPACITY, delta_fraction=0.2,
            auto_merge=False,
        )
        self.live: list[int] = []   # pool row id per local id
        self.deleted: set[int] = set()  # local ids
        self.cursor = 0

    @precondition(lambda self: self.cursor < CAPACITY)
    @rule(count=st.integers(1, 7))
    def insert(self, count: int) -> None:
        count = min(count, CAPACITY - self.cursor)
        batch = _POOL.slice_rows(self.cursor, self.cursor + count)
        local = self.node.insert_batch(batch)
        assert local.tolist() == list(
            range(len(self.live), len(self.live) + count)
        )
        self.live.extend(range(self.cursor, self.cursor + count))
        self.cursor += count

    @precondition(lambda self: self.node.n_delta > 0)
    @rule()
    def merge(self) -> None:
        self.node.merge_now()
        assert self.node.n_delta == 0
        assert not self.node.merge_in_flight

    @precondition(lambda self: self.node.n_delta > 0)
    @rule()
    def begin_merge(self) -> None:
        already_in_flight = self.node.merge_in_flight
        assert self.node.begin_merge()
        assert self.node.merge_in_flight
        if not already_in_flight:  # freezing moved the delta aside
            assert self.node.n_delta == 0

    @rule(wait=st.booleans())
    def commit_merge(self, wait: bool) -> None:
        was_in_flight = self.node.merge_in_flight
        committed = self.node.commit_merge(wait=wait)
        if wait:
            assert committed == was_in_flight
            assert not self.node.merge_in_flight
        if committed:
            assert self.node.n_frozen == 0

    @precondition(lambda self: len(self.live) > 0)
    @rule(data=st.data())
    def delete(self, data) -> None:
        local = data.draw(st.integers(0, len(self.live) - 1))
        self.node.delete(np.asarray([local]))
        self.deleted.add(local)

    @rule()
    def retire(self) -> None:
        self.node.retire()
        assert not self.node.merge_in_flight
        self.live.clear()
        self.deleted.clear()
        self.cursor = 0

    @invariant()
    def sizes_agree(self) -> None:
        assert self.node.n_total == len(self.live)
        assert self.node.n_live == len(self.live) - len(self.deleted)

    @precondition(lambda self: len(self.live) > 0)
    @rule(data=st.data())
    def query_agrees_with_oracle(self, data) -> None:
        local = data.draw(st.integers(0, len(self.live) - 1))
        pool_row = self.live[local]
        cols, vals = _POOL.row(pool_row)
        got = set(
            self.node.query(cols.astype(np.int64), vals).indices.tolist()
        )
        # Oracle: exact distances over live rows, minus deletions.
        live_rows = _POOL.gather_rows(np.asarray(self.live, dtype=np.int64))
        dense = densify_query(cols.astype(np.int64), vals, DIM)
        dots = row_dots_dense(
            live_rows, np.arange(live_rows.n_rows), dense
        )
        dists = angular_distance(dots)
        truth = {
            i
            for i in np.nonzero(dists <= PARAMS.radius)[0].tolist()
            if i not in self.deleted
        }
        # LSH may miss (probabilistic recall) but never invents or returns
        # tombstones; and the query row itself always collides with itself.
        assert got <= truth
        if local not in self.deleted:
            assert local in got


StreamingNodeMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None
)
TestStreamingNodeMachine = StreamingNodeMachine.TestCase
