"""The cluster wire protocol: length-prefixed binary messages.

The paper's coordinator speaks MPI over Infiniband; this reproduction
speaks a small binary protocol over TCP.  Every message is one frame::

    frame     := length(u64 BE) body
    body      := code(u8) meta_len(u32 BE) meta_json n_arrays(u8) array*
    array     := dtype(u8) ndim(u8) shape(i64 BE * ndim) payload

``code`` is an op code on requests and a status code on responses.  The
hot payload — CSR buffers, id and distance arrays — travels as raw
C-contiguous numpy buffers (``array*``), so encoding a query batch or a
result block is a handful of ``memoryview`` copies and **never pickles**.
``meta_json`` carries only small control fields (radius, flags, counters,
stats rows); it is bounded and schema-free, which keeps the protocol
evolvable without a version dance per op.

Both sides of the protocol are pure functions over ``bytes`` — sockets
live in :mod:`repro.cluster.transport` — so the encoding is testable
without spawning anything.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Sequence

import numpy as np

__all__ = [
    "OP_PING",
    "OP_INSERT_BATCH",
    "OP_QUERY",
    "OP_QUERY_BATCH",
    "OP_DELETE_GLOBAL",
    "OP_BEGIN_MERGE",
    "OP_COMMIT_MERGE",
    "OP_MERGE_NOW",
    "OP_STATS",
    "OP_RETIRE",
    "OP_SHUTDOWN",
    "OP_HELLO",
    "OP_RETIRE_WINDOW",
    "OP_RETIRE_BEFORE",
    "OP_EXPORT_STATE",
    "OP_IMPORT_STATE",
    "STATUS_OK",
    "STATUS_ERROR",
    "OP_NAMES",
    "encode_message",
    "decode_message",
    "csr_to_arrays",
    "arrays_to_csr",
    "compact_ids",
    "widen_ids",
]

# -- op codes (requests) ---------------------------------------------------

OP_PING = 1
OP_INSERT_BATCH = 2
OP_QUERY = 3
OP_QUERY_BATCH = 4
OP_DELETE_GLOBAL = 5
OP_BEGIN_MERGE = 6
OP_COMMIT_MERGE = 7
OP_MERGE_NOW = 8
OP_STATS = 9
OP_RETIRE = 10
OP_SHUTDOWN = 11
#: transport feature negotiation (shared-memory rings); sent once per
#: connection before any other op.  Servers that predate it answer
#: STATUS_ERROR and the client degrades to plain framed TCP.
OP_HELLO = 12
#: partition-lifecycle retirement (PR 10): drop all partitions without a
#: node teardown (window advance) / drop rows older than a cutoff.
OP_RETIRE_WINDOW = 13
OP_RETIRE_BEFORE = 14
#: replica resync: ship a node's full state (flat named-array payload)
#: from a surviving sibling to a rebuilt replacement.
OP_EXPORT_STATE = 15
OP_IMPORT_STATE = 16

#: human-readable op names for errors and logs.
OP_NAMES = {
    OP_PING: "ping",
    OP_INSERT_BATCH: "insert_batch",
    OP_QUERY: "query",
    OP_QUERY_BATCH: "query_batch",
    OP_DELETE_GLOBAL: "delete_global",
    OP_BEGIN_MERGE: "begin_merge",
    OP_COMMIT_MERGE: "commit_merge",
    OP_MERGE_NOW: "merge_now",
    OP_STATS: "stats",
    OP_RETIRE: "retire",
    OP_SHUTDOWN: "shutdown",
    OP_HELLO: "hello",
    OP_RETIRE_WINDOW: "retire_window",
    OP_RETIRE_BEFORE: "retire_before",
    OP_EXPORT_STATE: "export_state",
    OP_IMPORT_STATE: "import_state",
}

# -- status codes (responses) ----------------------------------------------

STATUS_OK = 0
STATUS_ERROR = 255

# -- array payload encoding ------------------------------------------------

#: wire dtype code -> numpy dtype.  Codes are part of the format; append
#: only.
_WIRE_DTYPES: list[np.dtype] = [
    np.dtype(np.int64),
    np.dtype(np.int32),
    np.dtype(np.float32),
    np.dtype(np.float64),
    np.dtype(np.uint16),
    np.dtype(np.uint8),
    np.dtype(np.uint32),
    np.dtype(np.float16),
]
_DTYPE_CODES = {dt: code for code, dt in enumerate(_WIRE_DTYPES)}

_U64 = struct.Struct(">Q")
_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")


def _json_default(obj: Any):
    """Meta fields come from numpy-heavy code; coerce scalars."""
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    raise TypeError(f"{type(obj).__name__} is not JSON serializable")


def encode_message(
    code: int,
    meta: dict | None = None,
    arrays: Sequence[np.ndarray] = (),
) -> bytes:
    """Encode one message body (no frame length prefix; see transport)."""
    if not 0 <= code <= 255:
        raise ValueError(f"code must fit one byte, got {code}")
    if len(arrays) > 255:
        raise ValueError(f"too many arrays in one message: {len(arrays)}")
    meta_bytes = json.dumps(
        meta or {}, separators=(",", ":"), default=_json_default
    ).encode("utf-8")
    parts = [bytes([code]), _U32.pack(len(meta_bytes)), meta_bytes,
             bytes([len(arrays)])]
    for arr in arrays:
        arr = np.ascontiguousarray(arr)
        try:
            dtype_code = _DTYPE_CODES[arr.dtype]
        except KeyError:
            raise TypeError(
                f"dtype {arr.dtype} is not on the wire format "
                f"(supported: {[str(d) for d in _WIRE_DTYPES]})"
            ) from None
        header = bytes([dtype_code, arr.ndim]) + b"".join(
            _I64.pack(s) for s in arr.shape
        )
        parts.append(header)
        parts.append(arr.tobytes())
    return b"".join(parts)


def decode_message(body: bytes) -> tuple[int, dict, list[np.ndarray]]:
    """Decode a message body back into ``(code, meta, arrays)``.

    Arrays are materialized as fresh C-contiguous numpy arrays (copies of
    the receive buffer, so the buffer can be reused).
    """
    view = memoryview(body)
    if len(view) < 6:
        raise ValueError(f"message body too short: {len(view)} bytes")
    code = view[0]
    meta_len = _U32.unpack_from(view, 1)[0]
    pos = 5 + meta_len
    if len(view) < pos + 1:
        raise ValueError("message body truncated in meta")
    meta = json.loads(bytes(view[5:pos]).decode("utf-8")) if meta_len else {}
    n_arrays = view[pos]
    pos += 1
    arrays: list[np.ndarray] = []
    for _ in range(n_arrays):
        if len(view) < pos + 2:
            raise ValueError("message body truncated in array header")
        dtype_code, ndim = view[pos], view[pos + 1]
        pos += 2
        if dtype_code >= len(_WIRE_DTYPES):
            raise ValueError(f"unknown wire dtype code {dtype_code}")
        if len(view) < pos + 8 * ndim:
            raise ValueError("message body truncated in array shape")
        shape = tuple(
            _I64.unpack_from(view, pos + 8 * d)[0] for d in range(ndim)
        )
        pos += 8 * ndim
        if any(s < 0 for s in shape):
            raise ValueError(f"negative dimension in array shape {shape}")
        dtype = _WIRE_DTYPES[dtype_code]
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if len(view) < pos + nbytes:
            raise ValueError(
                f"message body truncated in array payload "
                f"(need {nbytes} bytes, have {len(view) - pos})"
            )
        arr = np.frombuffer(view[pos : pos + nbytes], dtype=dtype).reshape(shape)
        arrays.append(arr.copy())
        pos += nbytes
    if pos != len(view):
        raise ValueError(f"{len(view) - pos} trailing bytes after message")
    return code, meta, arrays


# -- compact wire dtypes ---------------------------------------------------

_I32_MIN = -(2**31)
_I32_MAX = 2**31 - 1


def compact_ids(arr: np.ndarray) -> np.ndarray:
    """Narrow an int64 id/offset array to int32 when every value fits.

    Exact (ids are integers), so narrowing on send + :func:`widen_ids`
    on receipt is bit-identity-preserving end to end while halving the
    array's wire footprint.  Arrays that do not fit pass through.
    """
    if arr.dtype != np.int64 or arr.size == 0:
        return arr
    lo, hi = int(arr.min()), int(arr.max())
    if _I32_MIN <= lo and hi <= _I32_MAX:
        return arr.astype(np.int32)
    return arr


def widen_ids(arr: np.ndarray) -> np.ndarray:
    """Undo :func:`compact_ids` on receipt (int32 → int64; else as-is)."""
    if arr.dtype == np.int32:
        return arr.astype(np.int64)
    return arr


# -- CSR helpers -----------------------------------------------------------


def csr_to_arrays(matrix, *, compact: bool = False) -> list[np.ndarray]:
    """The three raw buffers of a :class:`~repro.sparse.csr.CSRMatrix`.

    ``compact=True`` narrows the int64 ``indptr`` to int32 when the nnz
    count allows (indices are already int32, data float32) — the
    receiving :func:`arrays_to_csr` widens it back exactly.
    """
    indptr = compact_ids(matrix.indptr) if compact else matrix.indptr
    return [indptr, matrix.indices, matrix.data]


def arrays_to_csr(
    indptr: np.ndarray, indices: np.ndarray, data: np.ndarray, n_cols: int
):
    """Rebuild a CSRMatrix from wire buffers (revalidated on receipt)."""
    from repro.sparse.csr import CSRMatrix

    return CSRMatrix(indptr, indices, data, n_cols)
