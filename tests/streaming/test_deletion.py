"""DeletionFilter tests."""

from __future__ import annotations

import numpy as np

from repro.streaming.deletion import DeletionFilter


def test_delete_and_check():
    f = DeletionFilter(100)
    assert f.delete(np.asarray([3, 5])) == 2
    assert f.is_deleted(np.asarray([3])).all()
    assert not f.is_deleted(np.asarray([4])).any()
    assert f.n_deleted == 2


def test_double_delete_counted_once():
    f = DeletionFilter(10)
    assert f.delete(np.asarray([1, 1, 2])) == 2
    assert f.delete(np.asarray([2])) == 0
    assert f.n_deleted == 2


def test_scalar_delete():
    f = DeletionFilter(10)
    assert f.delete(7) == 1
    assert f.is_deleted(7).all()


def test_filter_live():
    f = DeletionFilter(10)
    f.delete(np.asarray([2, 4]))
    out = f.filter_live(np.asarray([1, 2, 3, 4, 5]))
    np.testing.assert_array_equal(out, [1, 3, 5])


def test_filter_live_empty():
    f = DeletionFilter(10)
    assert f.filter_live(np.empty(0, dtype=np.int64)).size == 0


def test_mask_none_when_no_deletions():
    f = DeletionFilter(10)
    assert f.mask(10) is None
    f.delete(0)
    mask = f.mask(10)
    assert mask is not None and mask[0] and not mask[1:].any()


def test_reset_on_retirement():
    f = DeletionFilter(10)
    f.delete(np.arange(5))
    f.reset()
    assert f.n_deleted == 0
    assert not f.is_deleted(np.arange(10)).any()


def test_capacity_property():
    assert DeletionFilter(64).capacity == 64
