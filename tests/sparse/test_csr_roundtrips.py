"""CSR structural round-trips: slicing, stacking, gathering compose."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.csr import CSRMatrix


def _random_csr(rng, n_rows, n_cols):
    dense = (rng.random((n_rows, n_cols)) < 0.35) * rng.standard_normal(
        (n_rows, n_cols)
    )
    return CSRMatrix.from_dense(dense.astype(np.float32))


@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_slice_then_vstack_roundtrip(data):
    n_rows = data.draw(st.integers(1, 20))
    n_cols = data.draw(st.integers(1, 10))
    cut = data.draw(st.integers(0, n_rows))
    rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
    m = _random_csr(rng, n_rows, n_cols)
    back = CSRMatrix.vstack([m.slice_rows(0, cut), m.slice_rows(cut, n_rows)])
    np.testing.assert_array_equal(back.indptr, m.indptr)
    np.testing.assert_array_equal(back.indices, m.indices)
    np.testing.assert_array_equal(back.data, m.data)


@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_gather_identity_permutation(data):
    n_rows = data.draw(st.integers(1, 15))
    rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
    m = _random_csr(rng, n_rows, 8)
    g = m.gather_rows(np.arange(n_rows))
    np.testing.assert_allclose(g.to_dense(), m.to_dense())


@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_gather_composes_with_permutation(data):
    n_rows = data.draw(st.integers(2, 15))
    rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
    m = _random_csr(rng, n_rows, 6)
    perm1 = rng.permutation(n_rows)
    perm2 = rng.permutation(n_rows)
    once = m.gather_rows(perm1).gather_rows(perm2)
    direct = m.gather_rows(perm1[perm2])
    np.testing.assert_allclose(once.to_dense(), direct.to_dense())


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_normalization_is_idempotent(data):
    n_rows = data.draw(st.integers(1, 10))
    rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
    m = _random_csr(rng, n_rows, 8)
    once = m.normalized()
    twice = once.normalized()
    np.testing.assert_allclose(
        once.to_dense(), twice.to_dense(), rtol=1e-5, atol=1e-6
    )