"""Closed-loop multi-client load generator for the serving gateway.

*Closed-loop*: each simulated client keeps exactly one request in
flight — it sends a query, waits for the answer, records the latency,
sends the next.  Throughput is therefore an emergent property of
latency and the client count (Little's law), not an arrival-rate knob
that can silently overrun the server; it is the honest way to compare a
coalescing gateway against an uncoalesced one, because the gateway only
gets the concurrency real clients would give it.

All clients run as coroutines on one event loop
(:class:`~repro.serve.client.AsyncGatewayClient` each), so a single
process can drive hundreds of connections.  Rejections are honored: a
rejected request sleeps the server's ``retry_after`` hint and then
retries *as the same logical request* (closed-loop clients do not skip
work), with rejections counted separately so shed load shows up in the
report instead of vanishing.

The :class:`LoadReport` carries client-observed p50/p99/max latency, the
completed-query throughput, rejection/error counts, and the gateway's
own batcher stats snapshot (mean batch size, flush causes) taken at the
end of the run — the coalescing evidence next to the latency it bought.

**Mixed load (PR 9).**  ``write_fraction`` turns each client into a
mixed reader/writer: per request it flips a seeded coin and either
queries or inserts one row drawn from ``insert_pool`` — still strictly
closed-loop (one request in flight per client, writes included), so
write admission and the write micro-batcher are exercised by exactly the
concurrency real ingest clients would provide.  Write latencies and
throughput are reported separately from reads.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np

from repro.serve.client import AsyncGatewayClient
from repro.sparse.csr import CSRMatrix

__all__ = ["LoadReport", "run_closed_loop"]


@dataclass
class LoadReport:
    """One closed-loop run, client-side view plus gateway evidence."""

    n_clients: int
    n_ok: int = 0
    n_rejected: int = 0
    n_errors: int = 0
    n_degraded: int = 0
    #: acknowledged gateway inserts (mixed-load runs only).
    n_write_ok: int = 0
    seconds: float = 0.0
    #: all per-request client-observed latencies (seconds), ok only.
    latencies: list[float] = field(default_factory=list)
    #: client-observed insert ack latencies (seconds), mixed load only.
    write_latencies: list[float] = field(default_factory=list)
    #: gateway ``stats()`` snapshot at the end of the run.
    gateway_stats: dict = field(default_factory=dict)

    @property
    def qps(self) -> float:
        return self.n_ok / self.seconds if self.seconds > 0 else 0.0

    @property
    def wps(self) -> float:
        """Acknowledged inserts per second (0 for read-only runs)."""
        return self.n_write_ok / self.seconds if self.seconds > 0 else 0.0

    def latency_ms(self, percentile: float) -> float:
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), percentile)) * 1e3

    def write_latency_ms(self, percentile: float) -> float:
        if not self.write_latencies:
            return 0.0
        return (
            float(np.percentile(np.asarray(self.write_latencies), percentile))
            * 1e3
        )

    @property
    def p50_ms(self) -> float:
        return self.latency_ms(50)

    @property
    def p99_ms(self) -> float:
        return self.latency_ms(99)

    @property
    def mean_batch_size(self) -> float:
        return float(
            self.gateway_stats.get("batcher", {}).get("mean_batch_size", 0.0)
        )

    @property
    def mean_write_batch_size(self) -> float:
        """Write-batcher coalescing evidence from the gateway snapshot."""
        return float(
            self.gateway_stats.get("write_batcher", {}).get(
                "mean_batch_size", 0.0
            )
        )

    def row(self) -> list:
        """One table row: clients, ok, rej, qps, p50, p99, mean batch."""
        return [
            self.n_clients,
            self.n_ok,
            self.n_rejected,
            round(self.qps, 1),
            round(self.p50_ms, 2),
            round(self.p99_ms, 2),
            round(self.mean_batch_size, 1),
        ]


async def _client_loop(
    host: str,
    port: int,
    queries: CSRMatrix,
    offsets: np.ndarray,
    n_requests: int,
    radius: float | None,
    tenant: str | None,
    report: LoadReport,
    start_gate: asyncio.Event,
    is_write: np.ndarray | None = None,
    insert_pool: CSRMatrix | None = None,
    insert_offsets: np.ndarray | None = None,
    is_filtered: np.ndarray | None = None,
    time_range: tuple[int, int] | None = None,
) -> None:
    client = await AsyncGatewayClient().connect(host, port)
    try:
        await start_gate.wait()
        n_rows = queries.n_rows
        served = 0
        cursor = 0
        n_inserted = 0
        while served < n_requests:
            write = is_write is not None and bool(is_write[served])
            if write:
                cols, vals = insert_pool.row(
                    int(insert_offsets[n_inserted % insert_offsets.size])
                )
            else:
                cols, vals = queries.row(
                    int(offsets[cursor % offsets.size]) % n_rows
                )
                cursor += 1
            start = time.perf_counter()
            if write:
                message = await client.insert_raw(cols, vals, tenant=tenant)
            else:
                tr = (
                    time_range
                    if is_filtered is not None and bool(is_filtered[served])
                    else None
                )
                message = await client.query_raw(
                    cols, vals, radius=radius, tenant=tenant, time_range=tr
                )
            status = message.get("status")
            if status == "ok":
                elapsed = time.perf_counter() - start
                if write:
                    report.write_latencies.append(elapsed)
                    report.n_write_ok += 1
                    n_inserted += 1
                else:
                    report.latencies.append(elapsed)
                    report.n_ok += 1
                    if message.get("degraded"):
                        report.n_degraded += 1
                served += 1
            elif status == "rejected":
                report.n_rejected += 1
                await asyncio.sleep(
                    float(message.get("retry_after", 0.001))
                )
            else:
                report.n_errors += 1
                served += 1
    finally:
        await client.close()


async def _run(
    host: str,
    port: int,
    queries: CSRMatrix,
    n_clients: int,
    requests_per_client: int,
    radius: float | None,
    tenants: list[str] | None,
    seed: int,
    write_fraction: float = 0.0,
    insert_pool: CSRMatrix | None = None,
    time_filter_fraction: float = 0.0,
    time_range: tuple[int, int] | None = None,
) -> LoadReport:
    # Reject an empty corpus HERE, on the path every entry point shares:
    # the old ``rng.permutation(max(n_rows, 1))`` fabricated index 0 for
    # an empty pool and only blew up (or silently queried garbage) inside
    # the client loop.
    if queries.n_rows < 1:
        raise ValueError(
            "query pool is empty (queries.n_rows == 0) — the load "
            "generator needs at least one query vector to draw from"
        )
    if write_fraction and (insert_pool is None or insert_pool.n_rows < 1):
        raise ValueError(
            "write_fraction > 0 needs a non-empty insert_pool to draw "
            "insert rows from"
        )
    report = LoadReport(n_clients=n_clients)
    rng = np.random.default_rng(seed)
    start_gate = asyncio.Event()
    tasks = []
    for c in range(n_clients):
        # Every client walks its own shuffled view of the query pool so
        # concurrent batches mix queries instead of duplicating them.
        offsets = rng.permutation(queries.n_rows)
        tenant = tenants[c % len(tenants)] if tenants else None
        is_write = None
        insert_offsets = None
        if write_fraction:
            # Seeded per-client coin flips: the read/write interleaving
            # is reproducible for a given (seed, n_clients).
            is_write = rng.random(requests_per_client) < write_fraction
            insert_offsets = rng.permutation(insert_pool.n_rows)
        is_filtered = None
        if time_filter_fraction:
            # Same reproducibility story for the time-filter mix: the
            # gateway then coalesces filtered and unfiltered queries into
            # the same micro-batches and must keep them apart.
            is_filtered = (
                rng.random(requests_per_client) < time_filter_fraction
            )
        tasks.append(
            asyncio.ensure_future(
                _client_loop(
                    host, port, queries, offsets, requests_per_client,
                    radius, tenant, report, start_gate,
                    is_write, insert_pool, insert_offsets,
                    is_filtered, time_range,
                )
            )
        )
    # All connections established before the clock starts.
    await asyncio.sleep(0)
    start_gate.set()
    start = time.perf_counter()
    results = await asyncio.gather(*tasks, return_exceptions=True)
    report.seconds = time.perf_counter() - start
    failures = [r for r in results if isinstance(r, BaseException)]
    if failures:
        raise failures[0]
    try:
        probe = await AsyncGatewayClient().connect(host, port)
        try:
            report.gateway_stats = await probe.stats()
        finally:
            await probe.close()
    except (ConnectionError, OSError):
        pass  # gateway already closing; the latency numbers stand
    return report


def run_closed_loop(
    host: str,
    port: int,
    queries: CSRMatrix,
    *,
    n_clients: int,
    requests_per_client: int,
    radius: float | None = None,
    tenants: list[str] | None = None,
    seed: int = 0,
    write_fraction: float = 0.0,
    insert_pool: CSRMatrix | None = None,
    time_filter_fraction: float = 0.0,
    time_range: tuple[int, int] | None = None,
) -> LoadReport:
    """Drive the gateway with ``n_clients`` closed-loop clients.

    Each client issues ``requests_per_client`` requests; with
    ``write_fraction > 0`` that fraction (per-request seeded coin) are
    single-row inserts drawn from ``insert_pool``, the rest queries
    drawn (shuffled, per-client seed) from ``queries``; the report
    aggregates all clients, write metrics separate from reads.  With
    ``time_filter_fraction > 0`` that fraction of queries (per-request
    seeded coin) carry ``time_range`` as a recency filter, so the
    gateway's per-``(radius, time_range)`` broadcast grouping is
    exercised by a realistic mixed stream.  Runs its own event loop —
    call from ordinary sync code while the gateway serves on its
    background thread.
    """
    if n_clients < 1:
        raise ValueError(f"n_clients must be >= 1, got {n_clients}")
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError(
            f"write_fraction must be in [0, 1], got {write_fraction}"
        )
    if not 0.0 <= time_filter_fraction <= 1.0:
        raise ValueError(
            f"time_filter_fraction must be in [0, 1], got "
            f"{time_filter_fraction}"
        )
    if time_filter_fraction and time_range is None:
        raise ValueError(
            "time_filter_fraction > 0 needs a time_range to filter by"
        )
    return asyncio.run(
        _run(
            host, port, queries, n_clients, requests_per_client,
            radius, tenants, seed, write_fraction, insert_pool,
            time_filter_fraction, time_range,
        )
    )
