"""Parameter tuner tests (Section 7.3)."""

from __future__ import annotations

import pytest

from repro.perfmodel.cost import PaperCostModel
from repro.perfmodel.tuner import ParameterTuner, minimum_m


class TestMinimumM:
    def test_min_m_satisfies_constraint(self):
        from repro.perfmodel.collisions import recall_probability

        for k in (4, 8, 12, 16):
            m = minimum_m(0.9, 0.1, k)
            assert m is not None
            assert float(recall_probability(0.9, k, m)) >= 0.9
            if m > 2:
                assert float(recall_probability(0.9, k, m - 1)) < 0.9

    def test_min_m_grows_with_k(self):
        ms = [minimum_m(0.9, 0.1, k) for k in (4, 8, 12, 16)]
        assert all(m is not None for m in ms)
        assert all(b >= a for a, b in zip(ms, ms[1:]))

    def test_returns_none_when_unreachable(self):
        assert minimum_m(0.9, 0.1, 16, m_max=3) is None

    def test_boundary_recall_override_reproduces_paper_regime(self):
        """At the paper's effective boundary target (~0.76-0.785) the
        enumeration lands on the paper's own pairs to within ±1 in m."""
        paper_pairs = {12: 21, 14: 29, 16: 40, 18: 55}
        for k, paper_m in paper_pairs.items():
            m = minimum_m(0.9, 0.1, k, boundary_recall=0.747)
            assert m is not None
            assert abs(m - paper_m) <= max(2, int(0.06 * paper_m))


@pytest.fixture(scope="module")
def tuner(small_vectors, small_queries):
    _, queries = small_queries
    return ParameterTuner(
        small_vectors,
        queries,
        PaperCostModel(),
        radius=0.9,
        delta=0.1,
        memory_bytes=4e9,
        k_max=14,
        n_query_sample=20,
        n_data_sample=200,
        seed=0,
    )


class TestTuner:
    def test_candidates_cover_even_k(self, tuner):
        ks = [c.k for c in tuner.candidates()]
        assert ks == sorted(ks)
        assert all(k % 2 == 0 for k in ks)

    def test_candidates_satisfy_recall_constraint(self, tuner):
        for c in tuner.candidates():
            assert c.recall_at_radius >= 0.9 - 1e-9

    def test_memory_accounting(self, tuner, small_vectors):
        for c in tuner.candidates():
            expected = (c.L * small_vectors.n_rows + (1 << c.k) * c.L) * 4
            assert c.table_bytes == expected

    def test_best_is_minimal_feasible(self, tuner):
        best = tuner.best()
        for c in tuner.candidates():
            if c.feasible:
                assert best.predicted_query_s <= c.predicted_query_s + 1e-12

    def test_infeasible_budget_raises(self, small_vectors, small_queries):
        _, queries = small_queries
        tiny = ParameterTuner(
            small_vectors,
            queries,
            PaperCostModel(),
            memory_bytes=1.0,  # nothing fits
            k_max=10,
            n_query_sample=5,
            n_data_sample=50,
        )
        with pytest.raises(ValueError):
            tiny.best()

    def test_collision_estimates_decrease_with_k(self, tuner):
        cands = tuner.candidates()
        collisions = {c.k: c.expected_collisions / c.L for c in cands}
        ks = sorted(collisions)
        # per-table collision probability falls geometrically with k
        assert collisions[ks[-1]] < collisions[ks[0]]
