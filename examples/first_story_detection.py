#!/usr/bin/env python
"""First-story detection over a tweet stream using PLSH.

The application that motivated streaming LSH over Twitter (Petrovic et al.,
cited as [28] in the paper): as each tweet arrives, find its nearest
neighbor among everything seen so far; a tweet with *no* close neighbor is
a "first story" — the start of a new topic.  The paper positions PLSH as a
general, scalable engine for exactly this workload.

Here we synthesize a stream in which a handful of "events" each spawn a
burst of near-duplicate tweets, interleaved with background chatter, and
use a streaming PLSH node to flag first stories: the first tweet of each
burst should be flagged, its follow-ups should not.

Run:  python examples/first_story_detection.py
"""

from __future__ import annotations

import numpy as np

from repro import IDFVectorizer, PLSHParams
from repro.streaming.node import StreamingPLSH
from repro.text.corpus import CorpusSpec, SyntheticCorpus
from repro.utils.rng import rng_for

VOCAB = 20_000
N_BACKGROUND = 6_000
N_EVENTS = 8
BURST = 40
NOVELTY_RADIUS = 0.85  # no neighbor within this angle -> first story
SEED = 23


def build_stream():
    """Background chatter with planted event bursts; returns (docs, labels).

    labels[i] is the event id if doc i starts or continues an event burst,
    with the burst's first document marked as the ground-truth first story.
    """
    rng = rng_for(SEED, "fsd-stream")
    background = SyntheticCorpus.generate(
        N_BACKGROUND,
        CorpusSpec(vocab_size=VOCAB, near_duplicate_fraction=0.0),
        seed=SEED,
    ).documents

    docs: list[np.ndarray] = []
    first_story_positions: list[int] = []
    bg_pos = 0
    for event in range(N_EVENTS):
        # Some background chatter before each event.
        take = int(rng.integers(N_BACKGROUND // (2 * N_EVENTS),
                                N_BACKGROUND // N_EVENTS))
        docs.extend(background[bg_pos : bg_pos + take])
        bg_pos += take
        # The event: a fresh template of rare-ish words, then mutations.
        template = rng.integers(VOCAB // 10, VOCAB, size=9)
        first_story_positions.append(len(docs))
        docs.append(np.unique(template))
        for _ in range(BURST - 1):
            keep = rng.random(template.size) < 0.85
            mutated = template[keep]
            extra = rng.integers(VOCAB // 10, VOCAB, size=int(rng.poisson(1)))
            docs.append(np.unique(np.concatenate([mutated, extra])))
    docs.extend(background[bg_pos:])
    return docs, set(first_story_positions)


def main() -> None:
    docs, truth = build_stream()
    vectorizer = IDFVectorizer(VOCAB).fit(docs)
    vectors = vectorizer.transform(docs)
    params = PLSHParams(k=16, m=24, radius=NOVELTY_RADIUS, seed=SEED)
    node = StreamingPLSH(
        VOCAB, params, capacity=len(docs), delta_fraction=0.05
    )

    print(
        f"streaming {len(docs):,} tweets ({N_EVENTS} planted events, "
        f"burst={BURST}) ...\n"
    )
    # Inserts are batched (the paper buffers ~100k tweets per insert, and
    # notes the resulting ~86 s visibility lag).  A first-story detector
    # cannot tolerate that lag — a burst fits inside one batch — so, as in
    # practice, novelty is checked against PLSH *plus* a linear scan of the
    # small not-yet-inserted tail.
    flagged: list[int] = []
    batch_start = 0
    BATCH = 500
    pending: list[dict[int, float]] = []

    def near_pending(cols: np.ndarray, vals: np.ndarray) -> bool:
        q = dict(zip(cols.tolist(), vals.tolist()))
        threshold = float(np.cos(NOVELTY_RADIUS))
        for row in pending:
            dot = sum(v * row.get(c, 0.0) for c, v in q.items())
            if dot >= threshold:
                return True
        return False

    for pos in range(len(docs)):
        cols, vals = vectors.row(pos)
        if cols.size:
            res = node.query(cols.astype(np.int64), vals)
            if len(res) == 0 and not near_pending(cols, vals):
                flagged.append(pos)
            pending.append(dict(zip(cols.tolist(), vals.tolist())))
        if pos - batch_start + 1 >= BATCH or pos == len(docs) - 1:
            node.insert_batch(vectors.slice_rows(batch_start, pos + 1))
            batch_start = pos + 1
            pending.clear()

    hits = [p for p in flagged if p in truth]
    print(f"flagged {len(flagged)} first-story candidates")
    print(
        f"event detection: {len(hits)}/{len(truth)} planted first stories "
        f"flagged"
    )
    # Background docs are random token sets, so many are genuinely novel —
    # what matters is that burst *followers* are NOT flagged:
    followers = [
        p for p in flagged
        if any(f < p < f + BURST for f in truth) and p not in truth
    ]
    print(f"burst follow-ups wrongly flagged as novel: {len(followers)}")

    assert len(hits) == len(truth), "every planted first story must be flagged"
    # LSH is probabilistic: early burst followers have only 1-2 prior
    # neighbors, each found with probability P'(t,k,m) < 1, so a small
    # fraction of followers is inevitably (and acceptably) re-flagged.
    total_followers = N_EVENTS * (BURST - 1)
    assert len(followers) <= 0.15 * total_followers, (
        f"{len(followers)}/{total_followers} followers flagged; expected "
        "only the LSH-miss tail"
    )
    print("\nfirst-story detection behaved as expected.")


if __name__ == "__main__":
    main()
