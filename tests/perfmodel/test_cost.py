"""Paper cycle-model tests: the Section 7.1 constants must reproduce the
paper's own derived numbers."""

from __future__ import annotations

import pytest

from repro.perfmodel.cost import PAPER_HARDWARE, HardwareSpec, PaperCostModel


@pytest.fixture(scope="module")
def model():
    return PaperCostModel(PAPER_HARDWARE)


class TestPaperDerivedNumbers:
    def test_bandwidth_bytes_per_cycle(self):
        # Paper: "around 12.3 bytes/cycle (32 GBps at 2.6 GHz)".
        assert PAPER_HARDWARE.bandwidth_bytes_per_cycle == pytest.approx(
            12.3, abs=0.1
        )

    def test_q2_cycles_per_collision(self, model):
        # Paper: 11 ops / 8 cores = 1.4 cycles per index.
        assert model.tq2_cycles_per_collision() == pytest.approx(1.375, abs=0.01)

    def test_q2_scan_for_10m(self, model):
        # Paper: "0.6M cycles for N = 10M".
        assert model.tq2_scan_cycles(10_000_000) == pytest.approx(0.6e6, rel=0.1)

    def test_q3_cycles_per_unique(self, model):
        # Paper: 256 bytes -> 20.8 cycles, TQ3 = 21.8 cycles/unique.
        assert model.tq3_cycles_per_unique() == pytest.approx(21.8, abs=0.3)

    def test_hashing_cycles_per_tweet(self, model):
        # Paper: NNZ=7.2, k=16, m=40 -> TH = 412 cycles/tweet... derived as
        # 7.2 * 320 * 11 / 64 = 396; the paper rounds to 412.
        th = model.hashing_cycles_per_item(7.2, 16, 40)
        assert th == pytest.approx(412, rel=0.08)

    def test_i1_cycles_per_tweet(self, model):
        # Paper: TI1 = 1.96 * m cycles/tweet ~ 78 for m=40.
        cost = model.creation_cost(1, 7.2, 16, 40)
        i1_cycles = cost.i1_s * PAPER_HARDWARE.frequency_hz
        assert i1_cycles == pytest.approx(78, rel=0.05)

    def test_i2_i3_cycles_per_tweet(self, model):
        # Paper: TI2 = TI3 = 16 * 780 / 12.3 = 1015 cycles/tweet.
        cost = model.creation_cost(1, 7.2, 16, 40)
        for s in (cost.i2_s, cost.i3_s):
            assert s * PAPER_HARDWARE.frequency_hz == pytest.approx(1015, rel=0.02)

    def test_total_construction_per_tweet(self, model):
        # Paper: total ~ 2520 cycles/tweet; >80% in I2+I3.
        cost = model.creation_cost(1, 7.2, 16, 40)
        total_cycles = cost.total_s * PAPER_HARDWARE.frequency_hz
        assert total_cycles == pytest.approx(2520, rel=0.05)
        assert (cost.i2_s + cost.i3_s) / cost.total_s > 0.8

    def test_paper_query_prediction_magnitude(self, model):
        """With the paper's measured per-query stats (~120k collisions at
        10.5M tweets giving 1.42 ms measured), the model must land in the
        same regime (Figure 6 shows est/actual within ~15 %)."""
        cost = model.query_cost(
            10_500_000, expected_collisions=600_000, expected_unique=120_000
        )
        assert 0.5e-3 < cost.total_s < 3e-3

    def test_merge_bound(self, model):
        assert model.merge_optimality_bound() == pytest.approx(2.67, abs=0.01)


class TestHardwareSpec:
    def test_seconds_conversion(self):
        hw = HardwareSpec(frequency_hz=2e9)
        assert hw.seconds(2e9) == 1.0

    def test_custom_spec_propagates(self):
        hw = HardwareSpec(frequency_hz=1e9, bandwidth_bytes_per_s=10e9,
                          n_cores=4, simd_width=4)
        model = PaperCostModel(hw)
        assert model.tq2_cycles_per_collision() == pytest.approx(11 / 4)
        assert model.tq3_cycles_per_unique() == pytest.approx(256 / 10 + 1)
