"""Distance kernel tests: all three Q3 strategies must agree."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distance import (
    angular_distance,
    candidate_dots_batched,
    candidate_dots_lookup,
    candidate_dots_naive,
    exhaustive_dots,
)
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import densify_query


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(3)
    dense = (rng.random((30, 50)) < 0.2) * rng.standard_normal((30, 50))
    dense = dense.astype(np.float32)
    norms = np.linalg.norm(dense, axis=1, keepdims=True)
    norms[norms == 0] = 1
    dense /= norms
    return CSRMatrix.from_dense(dense), dense


def query_of(data_dense, row):
    cols = np.nonzero(data_dense[row])[0].astype(np.int64)
    return cols, data_dense[row, cols]


class TestAngularDistance:
    def test_zero_angle(self):
        assert angular_distance(np.asarray([1.0]))[0] == 0.0

    def test_orthogonal(self):
        np.testing.assert_allclose(
            angular_distance(np.asarray([0.0])), np.pi / 2
        )

    def test_clipping_handles_rounding(self):
        out = angular_distance(np.asarray([1.0000001, -1.0000001]))
        np.testing.assert_allclose(out, [0.0, np.pi])


class TestDotStrategies:
    def test_all_strategies_agree(self, data):
        csr, dense = data
        q_cols, q_vals = query_of(dense, 4)
        q_dense = densify_query(q_cols, q_vals, csr.n_cols)
        cands = np.asarray([0, 4, 7, 12, 29])
        naive = candidate_dots_naive(csr, cands, q_cols, q_vals)
        lookup = candidate_dots_lookup(csr, cands, q_cols, q_vals)
        batched = candidate_dots_batched(csr, cands, q_dense)
        np.testing.assert_allclose(naive, lookup, rtol=1e-4, atol=1e-6)
        np.testing.assert_allclose(naive, batched, rtol=1e-4, atol=1e-6)

    def test_against_dense_ground_truth(self, data):
        csr, dense = data
        q_cols, q_vals = query_of(dense, 9)
        q_dense = densify_query(q_cols, q_vals, csr.n_cols)
        cands = np.arange(30)
        expected = dense @ dense[9]
        np.testing.assert_allclose(
            candidate_dots_batched(csr, cands, q_dense),
            expected,
            rtol=1e-4,
            atol=1e-5,
        )

    def test_empty_candidates(self, data):
        csr, dense = data
        q_cols, q_vals = query_of(dense, 0)
        q_dense = densify_query(q_cols, q_vals, csr.n_cols)
        assert candidate_dots_batched(csr, np.empty(0, np.int64), q_dense).size == 0
        assert candidate_dots_naive(csr, np.empty(0, np.int64), q_cols, q_vals).size == 0

    def test_self_dot_is_one(self, data):
        csr, dense = data
        q_cols, q_vals = query_of(dense, 11)
        q_dense = densify_query(q_cols, q_vals, csr.n_cols)
        dot = candidate_dots_batched(csr, np.asarray([11]), q_dense)
        np.testing.assert_allclose(dot, 1.0, rtol=1e-5)


class TestExhaustive:
    def test_matches_dense(self, data):
        csr, dense = data
        q_cols, q_vals = query_of(dense, 2)
        np.testing.assert_allclose(
            exhaustive_dots(csr, q_cols, q_vals), dense @ dense[2],
            rtol=1e-4, atol=1e-5,
        )
