"""Saving and loading built PLSH indexes and streaming nodes.

The paper's system is memory-resident and rebuilt from the firehose, but an
adoptable library needs restartability: a built static index (tables,
cached hash values, data, hyperplanes) round-trips through one ``.npz``
archive.  Loading restores an index that answers queries identically —
including the hash functions, which are stored rather than re-drawn so a
reloaded index agrees with peers built from the same seed.

:func:`save_node` / :func:`load_node` round-trip a whole
:class:`~repro.streaming.node.StreamingPLSH` — every static partition
(tables, rows, cached hash values, timestamps), delta rows with their
cached hash values (bins are rebuilt without re-hashing), deletion
tombstones, the logical clock, and merge bookkeeping.  A node with a
merge in flight is settled first: by default the pending build is
*drained* (committed) so the archive captures the post-merge state; pass
``on_pending="refuse"`` to make saving such a node an error instead.

Two layouts:

* a single ``.npz`` archive (``path`` ends in ``.npz``) with one key
  group per partition, or
* a **directory** (any other path): ``manifest.json`` + one
  ``partition_<seq>.npz`` per non-empty partition + ``head.npz`` (delta,
  tombstones, clock).  Re-saving after retirement **never rewrites cold
  partition files** — a partition file whose ``(seq, base, n_items)``
  still matches the manifest is left untouched (partition content is
  immutable once rows exist; only the newest partition grows, changing
  its ``n_items``), and files for dropped partitions are removed.

Pre-partition (format 1) archives load as a **single-partition** index:
every row gets timestamp 0 and the logical clock resumes at 1, so a
restored legacy node answers full-range queries bit-identically and can
immediately participate in the partition lifecycle.

:func:`save_cluster_node` / :func:`load_cluster_node` round-trip a whole
:class:`~repro.cluster.node.ClusterNode`: the wrapped streaming node
*plus* the local→global id map and the node id.  The map is what makes a
restored node answer queries in **global** ids — persisting only the
inner streaming node (an early bug) silently restored a node whose query
results were local row numbers.

:func:`save_cluster` / :func:`load_cluster` round-trip a whole in-process
:class:`~repro.cluster.cluster.PLSHCluster` as a directory: one archive
per **logical shard** (taken from the shard's first trusted replica —
replicas are bit-identical by construction, so one copy is the whole
shard) plus a manifest holding the window state (``window_start``,
cursor, ``next_global_id``, retirement history) that makes the restored
cluster continue the stream exactly where the saved one stopped.  A
cluster saved with ``replication=R`` reloads with R fresh, identical
replicas per shard — which is also the (manual, offline) path for
re-syncing after evictions: save, reload, every shard is back to full
strength.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.hashing import AllPairsHasher
from repro.core.index import PLSHIndex
from repro.core.tables import StaticTableSet
from repro.params import PLSHParams
from repro.sparse.csr import CSRMatrix

__all__ = [
    "save_index",
    "load_index",
    "save_node",
    "load_node",
    "save_cluster_node",
    "load_cluster_node",
    "cluster_node_state",
    "restore_cluster_node_state",
    "save_cluster",
    "load_cluster",
]

_FORMAT_VERSION = 1
#: format 2 added time-ranged partitions; format-1 archives are read as a
#: single partition (see :func:`_restore_node`).
_NODE_FORMAT_VERSION = 2
_NODE_READABLE_VERSIONS = (1, 2)


def save_index(index: PLSHIndex, path: str | Path) -> None:
    """Serialize a built index to ``path`` (an ``.npz`` archive)."""
    if not index.is_built:
        raise ValueError("cannot save an index that has not been built")
    assert index.data is not None
    assert index.u_values is not None
    assert index.tables is not None
    meta = {
        "format_version": _FORMAT_VERSION,
        "dim": index.dim,
        "params": {
            "k": index.params.k,
            "m": index.params.m,
            "radius": index.params.radius,
            "delta": index.params.delta,
            "seed": index.params.seed,
        },
        "dedup": index._dedup,
        "dots": index._dots,
    }
    np.savez_compressed(
        Path(path),
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        data_indptr=index.data.indptr,
        data_indices=index.data.indices,
        data_values=index.data.data,
        u_values=index.u_values,
        entries=index.tables.entries,
        offsets=index.tables.offsets,
        hyperplanes=index.hasher.bank.planes,
    )


def load_index(path: str | Path) -> PLSHIndex:
    """Restore an index saved by :func:`save_index`."""
    with np.load(Path(path)) as archive:
        meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
        if meta["format_version"] != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported index format {meta['format_version']} "
                f"(this build reads {_FORMAT_VERSION})"
            )
        params = PLSHParams(**meta["params"])
        dim = int(meta["dim"])
        data = CSRMatrix(
            archive["data_indptr"],
            archive["data_indices"],
            archive["data_values"],
            dim,
            check=False,
        )
        hasher = AllPairsHasher(params, dim)
        # Restore the exact hyperplanes (seeds may legitimately be None).
        hasher.bank.planes = np.ascontiguousarray(
            archive["hyperplanes"], dtype=np.float32
        )
        index = PLSHIndex(
            dim, params, hasher=hasher, dedup=meta["dedup"], dots=meta["dots"]
        )
        index.data = data
        index.u_values = np.ascontiguousarray(archive["u_values"])
        index.tables = StaticTableSet(
            np.ascontiguousarray(archive["entries"]),
            np.ascontiguousarray(archive["offsets"]),
            params,
        )
        from repro.core.query import QueryEngine

        index.engine = QueryEngine(
            index.tables,
            data,
            hasher,
            params,
            dedup=meta["dedup"],
            dots=meta["dots"],
        )
        return index


def save_node(
    node, path: str | Path, *, on_pending: str = "drain"
) -> None:
    """Serialize a :class:`StreamingPLSH` node.

    ``path`` ending in ``.npz`` writes one archive; any other path writes
    the directory layout (``manifest.json`` + ``partition_<seq>.npz`` per
    non-empty partition + ``head.npz``), in which cold partition files
    that already match the manifest are **not rewritten** — so re-saving
    after :meth:`~repro.streaming.node.StreamingPLSH.retire_before` costs
    only the head, and retirement itself never touches cold archives.

    Captures every static partition (tables, rows, cached hash values,
    timestamps), the live delta, the deletion tombstones, the logical
    clock, and the merge bookkeeping.  A merge in flight is settled first
    according to ``on_pending``:

    * ``"drain"`` (default) — commit the pending build (waiting for it if
      still running), so the archive holds the post-merge state the node
      would have reached anyway.
    * ``"refuse"`` — raise :class:`ValueError`; the caller chose to keep
      save points off the merge window.
    """
    path = Path(path)
    if path.suffix == ".npz":
        np.savez_compressed(path, **_node_payload(node, on_pending))
        return
    _save_node_dir(node, path, on_pending)


def _node_meta(node) -> dict:
    return {
        "format_version": _NODE_FORMAT_VERSION,
        "dim": node.dim,
        "params": {
            "k": node.params.k,
            "m": node.params.m,
            "radius": node.params.radius,
            "delta": node.params.delta,
            "seed": node.params.seed,
        },
        "capacity": node.capacity,
        "delta_fraction": node.delta_fraction,
        "auto_merge": node.auto_merge,
        "overlap_merges": node.overlap_merges,
        "n_merges": node.n_merges,
        "n_static": node.n_static,
        "n_delta": node.n_delta,
        "dedup": node.static._dedup,
        "dots": node.static._dots,
        "clock": int(node._clock),
        "last_ts": None if node._last_ts is None else int(node._last_ts),
        "retire_floor": (
            None if node._retire_floor is None else int(node._retire_floor)
        ),
        "id_hi": int(node.static.id_hi),
        "next_seq": int(node.static._next_seq),
        "partitions": node.static.manifest(),
    }


def _settle_pending(node, on_pending: str) -> None:
    if on_pending not in ("drain", "refuse"):
        raise ValueError(
            f"on_pending must be 'drain' or 'refuse', got {on_pending!r}"
        )
    if node.merge_in_flight:
        if on_pending == "refuse":
            raise ValueError(
                "node has a merge in flight; commit it first or save with "
                "on_pending='drain'"
            )
        node.commit_merge(wait=True)


def _partition_arrays(part) -> dict:
    """The archive entries of one non-empty static partition."""
    index = part.index
    assert index.data is not None and index.u_values is not None
    assert index.tables is not None
    return dict(
        indptr=index.data.indptr,
        indices=index.data.indices,
        values=index.data.data,
        u=index.u_values,
        entries=index.tables.entries,
        offsets=index.tables.offsets,
        ts=part.timestamps,
    )


def _head_arrays(node) -> dict:
    """Non-partition archive entries (hyperplanes, delta, tombstones)."""
    delta_vectors = node.delta.vectors()
    # Tombstones as explicit ids: small, and reapplying them on load
    # restores both the bitvector and the deleted-count.  The id space
    # can exceed capacity once partitions were dropped (holes persist).
    all_ids = np.arange(node.id_space, dtype=np.int64)
    deleted = all_ids[node.deletions.is_deleted(all_ids)]
    return dict(
        hyperplanes=node.hasher.bank.planes,
        delta_indptr=delta_vectors.indptr,
        delta_indices=delta_vectors.indices,
        delta_values=delta_vectors.data,
        delta_u=node.delta.u_values(),
        delta_ts=node._delta_ts,
        deleted_ids=deleted,
    )


def _node_payload(node, on_pending: str) -> dict:
    """The single-archive entries of one StreamingPLSH (shared by node and
    cluster-node saving); settles a pending merge per ``on_pending``."""
    _settle_pending(node, on_pending)
    payload = dict(
        node_meta=np.frombuffer(
            json.dumps(_node_meta(node)).encode("utf-8"), dtype=np.uint8
        ),
        **_head_arrays(node),
    )
    for part in node.static.partitions:
        if part.n_items == 0:
            continue
        for key, arr in _partition_arrays(part).items():
            payload[f"p{part.seq}_{key}"] = arr
    return payload


def _save_node_dir(node, path: Path, on_pending: str) -> None:
    """Directory layout: cold partition files are reused, not rewritten."""
    _settle_pending(node, on_pending)
    path.mkdir(parents=True, exist_ok=True)
    meta = _node_meta(node)
    manifest_file = path / "manifest.json"
    old_parts: dict[int, dict] = {}
    if manifest_file.exists():
        try:
            old = json.loads(manifest_file.read_text())
            old_parts = {
                int(row["seq"]): row for row in old.get("partitions", [])
            }
        except (ValueError, KeyError):
            old_parts = {}
    live_files = {"manifest.json", "head.npz"}
    for part in node.static.partitions:
        if part.n_items == 0:
            continue
        fname = f"partition_{part.seq}.npz"
        live_files.add(fname)
        prev = old_parts.get(part.seq)
        fresh = (
            prev is None
            or prev.get("base") != part.base
            or prev.get("n_items") != part.n_items
            or not (path / fname).exists()
        )
        if fresh:
            # Partition content is immutable once rows exist (only the
            # newest grows, changing n_items), so a matching entry means
            # the file on disk is byte-equivalent — skip the rewrite.
            np.savez_compressed(path / fname, **_partition_arrays(part))
    np.savez_compressed(path / "head.npz", **_head_arrays(node))
    manifest_file.write_text(json.dumps(meta, indent=2))
    # Drop files of retired partitions (and stale temporaries).
    for f in path.glob("partition_*.npz"):
        if f.name not in live_files:
            f.unlink()


def load_node(path: str | Path):
    """Restore a node saved by :func:`save_node` (either layout).

    The loaded node answers queries bit-identically to the saved one:
    every partition's tables are restored verbatim, the delta bins are
    rebuilt from the persisted rows and *cached* hash values (no
    re-hashing, same bucket membership and order), and the tombstone
    bitvector is reapplied.  Format-1 (pre-partition) archives load as a
    single partition with all timestamps 0.  No merge is pending on a
    loaded node by construction.
    """
    path = Path(path)
    if path.is_dir():
        meta = json.loads((path / "manifest.json").read_text())
        parts: dict[int, np.lib.npyio.NpzFile] = {}
        try:
            for row in meta.get("partitions", []):
                if row["n_items"]:
                    seq = int(row["seq"])
                    parts[seq] = np.load(path / f"partition_{seq}.npz")
            with np.load(path / "head.npz") as head:
                archive = _DirArchive(meta, head, parts)
                return _restore_node(archive)
        finally:
            for f in parts.values():
                f.close()
    with np.load(path) as archive:
        return _restore_node(archive)


class _DirArchive:
    """Adapter presenting the directory layout as one archive mapping."""

    def __init__(self, meta: dict, head, parts: dict[int, object]) -> None:
        self._meta = meta
        self._head = head
        self._parts = parts

    def __getitem__(self, key: str):
        if key == "node_meta":
            return np.frombuffer(
                json.dumps(self._meta).encode("utf-8"), dtype=np.uint8
            )
        if key.startswith("p"):
            seq, _, field = key[1:].partition("_")
            if seq.isdigit() and int(seq) in self._parts:
                return self._parts[int(seq)][field]
        return self._head[key]


def _restore_partitions(node, meta, archive, hasher):
    """Rebuild the PartitionedStatic facade from archive key groups."""
    from repro.core.query import QueryEngine
    from repro.streaming.partitions import PartitionedStatic, StaticPartition

    params = node.params
    dim = node.dim
    dedup, dots = meta["dedup"], meta["dots"]
    parts: list[StaticPartition] = []
    for row in meta["partitions"]:
        seq, base, n = int(row["seq"]), int(row["base"]), int(row["n_items"])
        index = PLSHIndex(dim, params, hasher=hasher, dedup=dedup, dots=dots)
        if n == 0:
            index.build(CSRMatrix.empty(dim))
            ts = np.empty(0, dtype=np.int64)
        else:
            data = CSRMatrix(
                archive[f"p{seq}_indptr"],
                archive[f"p{seq}_indices"],
                archive[f"p{seq}_values"],
                dim,
                check=False,
            )
            index.data = data
            index.u_values = np.ascontiguousarray(archive[f"p{seq}_u"])
            index.tables = StaticTableSet(
                np.ascontiguousarray(archive[f"p{seq}_entries"]),
                np.ascontiguousarray(archive[f"p{seq}_offsets"]),
                params,
            )
            index.engine = QueryEngine(
                index.tables, data, hasher, params, dedup=dedup, dots=dots
            )
            ts = np.ascontiguousarray(archive[f"p{seq}_ts"], dtype=np.int64)
        parts.append(StaticPartition(index, base, ts, seq))
    node.static = PartitionedStatic.from_partitions(
        dim,
        params,
        hasher,
        parts,
        id_hi=int(meta["id_hi"]),
        next_seq=int(meta["next_seq"]),
        dedup=dedup,
        dots=dots,
    )


def _restore_legacy_static(node, meta, archive, hasher):
    """Format-1 monolithic static → one partition, all timestamps 0."""
    from repro.core.query import QueryEngine
    from repro.streaming.partitions import PartitionedStatic, StaticPartition

    params = node.params
    dim = node.dim
    dedup, dots = meta["dedup"], meta["dots"]
    n_static = int(meta["n_static"])
    if not n_static:
        return
    data = CSRMatrix(
        archive["static_indptr"],
        archive["static_indices"],
        archive["static_values"],
        dim,
        check=False,
    )
    index = PLSHIndex(dim, params, hasher=hasher, dedup=dedup, dots=dots)
    index.data = data
    index.u_values = np.ascontiguousarray(archive["static_u"])
    index.tables = StaticTableSet(
        np.ascontiguousarray(archive["static_entries"]),
        np.ascontiguousarray(archive["static_offsets"]),
        params,
    )
    index.engine = QueryEngine(
        index.tables, data, hasher, params, dedup=dedup, dots=dots
    )
    part = StaticPartition(
        index, 0, np.zeros(n_static, dtype=np.int64), 0
    )
    node.static = PartitionedStatic.from_partitions(
        dim, params, hasher, [part], dedup=dedup, dots=dots
    )


def _restore_node(archive):
    """Rebuild a StreamingPLSH from its archive entries."""
    from repro.streaming.delta import DeltaTable
    from repro.streaming.node import StreamingPLSH

    meta = json.loads(bytes(archive["node_meta"]).decode("utf-8"))
    version = meta["format_version"]
    if version not in _NODE_READABLE_VERSIONS:
        raise ValueError(
            f"unsupported node format {version} "
            f"(this build reads {_NODE_READABLE_VERSIONS})"
        )
    params = PLSHParams(**meta["params"])
    dim = int(meta["dim"])
    hasher = AllPairsHasher(params, dim)
    hasher.bank.planes = np.ascontiguousarray(
        archive["hyperplanes"], dtype=np.float32
    )
    node = StreamingPLSH(
        dim,
        params,
        int(meta["capacity"]),
        delta_fraction=float(meta["delta_fraction"]),
        auto_merge=bool(meta["auto_merge"]),
        overlap_merges=bool(meta["overlap_merges"]),
        hasher=hasher,
    )
    if version == 1:
        _restore_legacy_static(node, meta, archive, hasher)
    else:
        _restore_partitions(node, meta, archive, hasher)
    n_delta = int(meta["n_delta"])
    if n_delta:
        delta_vectors = CSRMatrix(
            archive["delta_indptr"],
            archive["delta_indices"],
            archive["delta_values"],
            dim,
            check=False,
        )
        node.delta = DeltaTable.restore(
            dim, params, hasher, delta_vectors,
            np.ascontiguousarray(archive["delta_u"]),
        )
    if version == 1:
        # Legacy rows predate timestamps: stamp everything 0 and resume
        # the logical clock at 1 so new inserts sort after them.
        node._delta_ts = np.zeros(n_delta, dtype=np.int64)
        if node.n_total:
            node._last_ts = 0
            node._clock = 1
    else:
        node._delta_ts = np.ascontiguousarray(
            archive["delta_ts"], dtype=np.int64
        )
        node._clock = int(meta["clock"])
        node._last_ts = (
            None if meta["last_ts"] is None else int(meta["last_ts"])
        )
        node._retire_floor = (
            None
            if meta["retire_floor"] is None
            else int(meta["retire_floor"])
        )
    deleted = np.ascontiguousarray(archive["deleted_ids"])
    node.deletions.ensure(node.id_space)
    if deleted.size:
        node.deletions.delete(deleted)
    node.n_merges = int(meta["n_merges"])
    return node


def cluster_node_state(cluster_node, *, on_pending: str = "drain") -> dict:
    """A :class:`~repro.cluster.node.ClusterNode`'s full state as a flat
    ``{name: array}`` mapping — the :func:`save_cluster_node` payload kept
    in memory.

    This is the **replica-resync wire payload**: every entry is a numpy
    array (metadata rides as a JSON-in-uint8 array), so the whole state
    ships over the node RPC protocol unchanged and
    :func:`restore_cluster_node_state` rebuilds a bit-identical node on
    the other side.
    """
    payload = _node_payload(cluster_node.plsh, on_pending)
    cluster_meta = {
        "format_version": _NODE_FORMAT_VERSION,
        "node_id": int(cluster_node.node_id),
    }
    payload["cluster_meta"] = np.frombuffer(
        json.dumps(cluster_meta).encode("utf-8"), dtype=np.uint8
    )
    payload["cluster_global_ids"] = cluster_node._global_ids
    return payload


def restore_cluster_node_state(payload) -> "object":
    """Rebuild a :class:`ClusterNode` from :func:`cluster_node_state`
    output (or any archive-like mapping carrying the same keys)."""
    from repro.cluster.node import ClusterNode

    if "cluster_meta" not in payload:
        raise ValueError(
            "payload has no cluster node entries; use load_node for "
            "plain StreamingPLSH archives"
        )
    cluster_meta = json.loads(bytes(payload["cluster_meta"]).decode("utf-8"))
    if cluster_meta["format_version"] not in _NODE_READABLE_VERSIONS:
        raise ValueError(
            f"unsupported cluster node format "
            f"{cluster_meta['format_version']} "
            f"(this build reads {_NODE_READABLE_VERSIONS})"
        )
    plsh = _restore_node(payload)
    return ClusterNode.restore(
        cluster_meta["node_id"],
        plsh,
        np.ascontiguousarray(payload["cluster_global_ids"]),
    )


def save_cluster_node(
    cluster_node, path: str | Path, *, on_pending: str = "drain"
) -> None:
    """Serialize a :class:`~repro.cluster.node.ClusterNode` to one archive.

    Extends the :func:`save_node` payload with the node id and the
    local→global id map — the map is load-bearing: without it a restored
    node answers queries in local row numbers instead of cluster-wide ids
    (the regression :func:`load_cluster_node` exists to prevent).
    ``on_pending`` settles an in-flight merge exactly as in
    :func:`save_node`.
    """
    np.savez_compressed(
        Path(path), **cluster_node_state(cluster_node, on_pending=on_pending)
    )


def load_cluster_node(path: str | Path):
    """Restore a cluster node saved by :func:`save_cluster_node`.

    The restored node answers queries bit-identically to the saved one —
    including the global ids its results carry.
    """
    with np.load(Path(path)) as archive:
        return restore_cluster_node_state(archive)


#: format 2 shards carry partitioned nodes; format-1 cluster directories
#: (monolithic shard archives) load as single-partition shards.
_CLUSTER_FORMAT_VERSION = 2
_CLUSTER_READABLE_VERSIONS = (1, 2)


def save_cluster(cluster, path: str | Path, *, on_pending: str = "drain") -> None:
    """Serialize an in-process :class:`PLSHCluster` to a directory.

    Writes ``manifest.json`` (topology + window state), one
    ``shard_<s>.npz`` per logical shard, and ``retired.npz`` (the
    retirement history, needed for exact continuation of the expiry
    policy).  Each shard is captured once, from its first trusted
    replica — replicas are identical, so the copy count is a *load-time*
    choice.  Remote clusters are refused: their data lives in the server
    processes, which own any persistence of it.
    """
    from repro.cluster.node import ClusterNode
    from repro.cluster.replication import ReplicaGroup

    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    for s, shard in enumerate(cluster.shards):
        source = (
            shard._active()[0] if isinstance(shard, ReplicaGroup) else shard
        )
        if not isinstance(source, ClusterNode):
            raise ValueError(
                "save_cluster supports in-process clusters only (remote "
                "node data lives in the server processes)"
            )
        save_cluster_node(source, path / f"shard_{s}.npz", on_pending=on_pending)
    manifest = {
        "format_version": _CLUSTER_FORMAT_VERSION,
        "dim": cluster.dim,
        "params": {
            "k": cluster.params.k,
            "m": cluster.params.m,
            "radius": cluster.params.radius,
            "delta": cluster.params.delta,
            "seed": cluster.params.seed,
        },
        "n_shards": cluster.n_shards,
        "replication": cluster.replication,
        "insert_window": cluster.insert_window,
        "window_start": cluster._window_start,
        "window_cursor": cluster._window_cursor,
        "next_global_id": cluster._next_global_id,
        "clock": cluster._clock,
        "n_retirements": cluster.n_retirements,
        "n_retired_items": cluster.n_retired_items,
        "retired_retention": cluster.retired_retention,
    }
    (path / "manifest.json").write_text(json.dumps(manifest, indent=2))
    np.savez_compressed(
        path / "retired.npz",
        **{f"r{i}": ids for i, ids in enumerate(cluster.retired_ids)},
    )


def load_cluster(path: str | Path, *, network=None, replication: int | None = None):
    """Restore a cluster saved by :func:`save_cluster`.

    The restored cluster continues the stream exactly: same window
    position, same next global id, same retirement history — inserting
    the same subsequent batches lands them on the same shards, and
    queries answer bit-identically to the saved cluster.  ``replication``
    overrides the saved R (each shard archive is loaded that many times
    into fresh, identical replicas), which is how a cluster that evicted
    replicas is brought back to full strength offline.
    """
    from repro.cluster.cluster import PLSHCluster

    path = Path(path)
    manifest = json.loads((path / "manifest.json").read_text())
    if manifest["format_version"] not in _CLUSTER_READABLE_VERSIONS:
        raise ValueError(
            f"unsupported cluster format {manifest['format_version']} "
            f"(this build reads {_CLUSTER_READABLE_VERSIONS})"
        )
    params = PLSHParams(**manifest["params"])
    R = int(replication if replication is not None else manifest["replication"])
    handles = []
    for s in range(int(manifest["n_shards"])):
        for j in range(R):
            node = load_cluster_node(path / f"shard_{s}.npz")
            node.node_id = s * R + j
            handles.append(node)
    cluster = PLSHCluster.from_handles(
        handles,
        int(manifest["dim"]),
        params,
        insert_window=int(manifest["insert_window"]),
        network=network,
        replication=R,
    )
    cluster._window_start = int(manifest["window_start"])
    cluster._window_cursor = int(manifest["window_cursor"])
    cluster._next_global_id = int(manifest["next_global_id"])
    # Format-1 manifests predate the cluster clock: resume it past every
    # node's own clock so new inserts never predate restored rows.
    cluster._clock = int(
        manifest.get(
            "clock", max((h.plsh.clock for h in handles), default=0)
        )
    )
    cluster.n_retirements = int(manifest["n_retirements"])
    cluster.retired_retention = int(manifest.get("retired_retention", 8))
    with np.load(path / "retired.npz") as retired:
        cluster.retired_ids = [
            np.ascontiguousarray(retired[f"r{i}"], dtype=np.int64)
            for i in range(len(retired.files))
        ]
    # Pre-retention archives carry only the retained blocks; their sum is
    # the best available running total.
    cluster.n_retired_items = int(
        manifest.get(
            "n_retired_items",
            sum(ids.size for ids in cluster.retired_ids),
        )
    )
    return cluster
