"""The paper's primary contribution: static PLSH (Sections 3-5).

* :mod:`repro.core.hyperplanes` — the angular (sign-random-projection) hash
  family of Charikar, evaluated over CSR input.
* :mod:`repro.core.hashing` — all-pairs LSH hashing: ``m`` functions of
  ``k/2`` bits combined into ``L = m(m-1)/2`` table keys.
* :mod:`repro.core.partition` — histogram/prefix-sum/scatter partitioning,
  one-level / two-level / shared-first-level construction strategies.
* :mod:`repro.core.tables` — contiguous static hash tables.
* :mod:`repro.core.query` — the Q1-Q4 query pipeline with pluggable
  optimization rungs (dedup strategy, sparse-dot strategy, gather batching).
* :mod:`repro.core.index` — :class:`PLSHIndex`, the public static facade.
"""

from repro.core.hashing import AllPairsHasher
from repro.core.hyperplanes import HyperplaneBank
from repro.core.index import PLSHIndex
from repro.core.query import QueryEngine, QueryResult, QueryStats
from repro.core.tables import StaticTableSet

__all__ = [
    "AllPairsHasher",
    "HyperplaneBank",
    "PLSHIndex",
    "QueryEngine",
    "QueryResult",
    "QueryStats",
    "StaticTableSet",
]
