"""The time-partitioned static tier (PR 10 tentpole).

Four contracts, each tested directly:

1. **Bit identity** — a node whose static tier was rolled into several
   time-ranged partitions answers every query (single, vectorized batch,
   pipelined batch; serial and sharded over 2 workers) bit-identically —
   ids, distances, *and order* — to a monolithic node fed the same
   stream.  Property-tested over seeded random roll/merge/delete
   placements.
2. **Time-filtered queries** — ``time_range=[t0, t1)`` answers exactly
   match an exhaustive time-aware oracle, and partitions whose time
   range misses the window are never probed (the facade's probe/prune
   counters prove the skip).
3. **O(1) retirement** — ``retire_before`` drops wholly-cold partitions
   without building a single table (a build counter planted on
   ``PLSHIndex.build`` stays at zero), tombstones the ragged edge only,
   and is idempotent per cutoff.
4. **Partition-scoped merges** — a frozen delta straddling a roll lands
   in the post-roll partition and answers stay bit-identical to the
   monolith throughout.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distance import angular_distance
from repro.core.index import PLSHIndex
from repro.params import PLSHParams
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import densify_query, row_dots_dense
from repro.streaming.node import StreamingPLSH
from repro.streaming.partitions import PartitionedStatic, StaticPartition

DIM = 48
CAPACITY = 96
PARAMS = PLSHParams(k=4, m=4, radius=1.1, seed=77)

_RNG = np.random.default_rng(20260808)
_POOL_DENSE = _RNG.standard_normal((CAPACITY, DIM)).astype(np.float32)
_POOL_DENSE /= np.linalg.norm(_POOL_DENSE, axis=1, keepdims=True)
_POOL = CSRMatrix.from_dense(_POOL_DENSE)


def _new_node(**kwargs) -> StreamingPLSH:
    kwargs.setdefault("delta_fraction", 0.25)
    kwargs.setdefault("auto_merge", False)
    return StreamingPLSH(DIM, PARAMS, CAPACITY, **kwargs)


def _assert_identical(got, ref, msg=""):
    np.testing.assert_array_equal(
        got.indices, ref.indices, err_msg=f"{msg} (ids)"
    )
    np.testing.assert_array_equal(
        got.distances, ref.distances, err_msg=f"{msg} (distances)"
    )


def _assert_batches_identical(got, ref, msg=""):
    assert len(got) == len(ref)
    for b, (x, y) in enumerate(zip(got, ref)):
        _assert_identical(x, y, f"{msg} query {b}")


class TestBitIdentity:
    """Partitioned static == monolithic static, bit for bit."""

    def _build_pair(self, seed: int):
        """Feed one stream to a partitioned node (random rolls/merges)
        and a monolithic shadow (same merges, never rolled)."""
        rng = np.random.default_rng(seed)
        primary = _new_node()
        shadow = _new_node()
        cursor = 0
        while cursor < CAPACITY:
            count = min(int(rng.integers(4, 13)), CAPACITY - cursor)
            batch = _POOL.slice_rows(cursor, cursor + count)
            primary.insert_batch(batch)
            shadow.insert_batch(batch)
            cursor += count
            roll = rng.random()
            if roll < 0.5:
                primary.merge_now()
                shadow.merge_now()
            if roll < 0.35:
                primary.roll_partition()  # the shadow stays monolithic
            if rng.random() < 0.3:
                doomed = int(rng.integers(cursor))
                primary.delete(np.asarray([doomed]))
                shadow.delete(np.asarray([doomed]))
        primary.merge_now()
        shadow.merge_now()
        return primary, shadow

    @pytest.mark.parametrize("workers", [None, 2])
    def test_full_range_queries_bit_identical(self, workers):
        """The tentpole property, over seeded random partition layouts."""
        saw_multi = False
        for seed in range(8):
            primary, shadow = self._build_pair(seed)
            try:
                saw_multi = saw_multi or primary.n_partitions > 1
                queries = _POOL.slice_rows(0, 16)
                _assert_batches_identical(
                    primary.query_batch(queries, workers=workers),
                    shadow.query_batch(queries, workers=1),
                    f"seed {seed} vectorized",
                )
                _assert_batches_identical(
                    primary.query_batch(
                        queries, workers=workers, mode="pipelined"
                    ),
                    shadow.query_batch(queries, workers=1, mode="pipelined"),
                    f"seed {seed} pipelined",
                )
                for row in range(0, 16, 5):
                    q_cols, q_vals = _POOL.row(row)
                    _assert_identical(
                        primary.query(q_cols.astype(np.int64), q_vals),
                        shadow.query(q_cols.astype(np.int64), q_vals),
                        f"seed {seed} single row {row}",
                    )
            finally:
                primary.close()
                shadow.close()
        assert saw_multi, "no seed produced a multi-partition layout"

    def test_roll_changes_layout_not_answers(self):
        """An explicit roll between every merge: maximum fragmentation,
        same bits."""
        primary = _new_node()
        shadow = _new_node()
        try:
            for lo in range(0, 60, 12):
                batch = _POOL.slice_rows(lo, lo + 12)
                primary.insert_batch(batch)
                shadow.insert_batch(batch)
                primary.merge_now()
                shadow.merge_now()
                primary.roll_partition()
            assert primary.n_partitions >= 5
            assert shadow.n_partitions == 1
            queries = _POOL.slice_rows(0, 12)
            _assert_batches_identical(
                primary.query_batch(queries), shadow.query_batch(queries)
            )
        finally:
            primary.close()
            shadow.close()


class TestTimeFilteredQueries:
    """``time_range`` == the exhaustive time-aware oracle, with pruning."""

    def _staged_node(self):
        """Three sealed partitions with disjoint logical time ranges
        (clock ticks once per insert batch: partitions cover ts 0..2,
        3..5, 6..8) plus 6 delta rows at ts 9..10."""
        node = _new_node()
        ts_of_row = np.empty(CAPACITY, dtype=np.int64)
        cursor = 0
        for _ in range(3):
            for _ in range(3):
                ts = node.clock
                node.insert_batch(_POOL.slice_rows(cursor, cursor + 8))
                ts_of_row[cursor : cursor + 8] = ts
                cursor += 8
            node.merge_now()
            node.roll_partition()
        for _ in range(2):
            ts = node.clock
            node.insert_batch(_POOL.slice_rows(cursor, cursor + 3))
            ts_of_row[cursor : cursor + 3] = ts
            cursor += 3
        return node, ts_of_row[:cursor], cursor

    def _oracle(self, q_cols, q_vals, ts_of_row, n, t0, t1):
        rows = _POOL.slice_rows(0, n)
        dense = densify_query(q_cols.astype(np.int64), q_vals, DIM)
        dots = row_dots_dense(rows, np.arange(n), dense)
        dists = angular_distance(dots)
        within = np.nonzero(dists <= PARAMS.radius)[0]
        return {
            int(i)
            for i in within
            if t0 <= int(ts_of_row[int(i)]) < t1
        }

    def test_filtered_answers_match_time_aware_oracle(self):
        node, ts_of_row, n = self._staged_node()
        try:
            windows = [(0, 3), (3, 6), (2, 8), (0, 99), (9, 11), (4, 5)]
            for t0, t1 in windows:
                for row in (0, 7, 30, 55):
                    q_cols, q_vals = _POOL.row(row)
                    got = node.query(
                        q_cols.astype(np.int64), q_vals, time_range=(t0, t1)
                    )
                    got_set = set(got.indices.tolist())
                    truth = self._oracle(
                        q_cols, q_vals, ts_of_row, n, t0, t1
                    )
                    assert got_set <= truth, (
                        f"window [{t0},{t1}) invented ids: "
                        f"{sorted(got_set - truth)}"
                    )
                    # The query's own row is its nearest neighbor: found
                    # iff its timestamp is inside the window.
                    if t0 <= int(ts_of_row[row]) < t1:
                        assert row in got_set
                    else:
                        assert row not in got_set
        finally:
            node.close()

    def test_filtered_batch_equals_filtered_singles(self):
        node, _, _ = self._staged_node()
        try:
            queries = _POOL.slice_rows(0, 10)
            for mode in (None, "pipelined"):
                batch = node.query_batch(
                    queries, time_range=(3, 7), mode=mode
                )
                for b in range(queries.n_rows):
                    q_cols, q_vals = queries.row(b)
                    single = node.query(
                        q_cols.astype(np.int64), q_vals, time_range=(3, 7)
                    )
                    _assert_identical(batch[b], single, f"mode {mode}")
        finally:
            node.close()

    def test_non_overlapping_partitions_are_pruned_not_probed(self):
        node, _, _ = self._staged_node()
        try:
            static = node.static
            assert static.n_partitions >= 4  # 3 sealed + open
            q_cols, q_vals = _POOL.row(0)
            q_cols = q_cols.astype(np.int64)

            static.n_probed = static.n_pruned = 0
            node.query(q_cols, q_vals, time_range=(0, 3))
            # Window [0,3) hits only the first partition; the other two
            # sealed partitions (ts 3..5 and 6..8) are pruned untouched.
            assert static.n_probed == 1
            assert static.n_pruned == 2

            static.n_probed = static.n_pruned = 0
            node.query(q_cols, q_vals, time_range=(100, 200))
            assert static.n_probed == 0
            assert static.n_pruned == 3

            static.n_probed = static.n_pruned = 0
            node.query(q_cols, q_vals)  # unfiltered: every partition probed
            assert static.n_probed == 3
            assert static.n_pruned == 0
        finally:
            node.close()

    def test_worker_sharded_filter_matches_serial(self):
        node, _, _ = self._staged_node()
        try:
            queries = _POOL.slice_rows(0, 12)
            _assert_batches_identical(
                node.query_batch(queries, workers=2, time_range=(2, 7)),
                node.query_batch(queries, workers=1, time_range=(2, 7)),
                "sharded vs serial filtered",
            )
        finally:
            node.close()


class TestRetirement:
    """``retire_before`` drops cold partitions O(1), tombstones the edge."""

    def _staged(self):
        node = _new_node()
        cursor = 0
        for _ in range(3):
            node.insert_batch(_POOL.slice_rows(cursor, cursor + 8))  # 1 tick
            cursor += 8
            node.merge_now()
            node.roll_partition()
        node.insert_batch(_POOL.slice_rows(cursor, cursor + 6))
        cursor += 6
        return node, cursor  # partitions at ts 0 / 1 / 2, delta at ts 3

    def test_cold_partition_drop_builds_no_tables(self, monkeypatch):
        node, _ = self._staged()
        try:
            builds = []
            orig = PLSHIndex.build

            def counting_build(self, vectors, **kwargs):
                builds.append(vectors.n_rows)
                return orig(self, vectors, **kwargs)

            monkeypatch.setattr(PLSHIndex, "build", counting_build)
            before = node.n_partitions
            retired = node.retire_before(2)  # drops the ts-0 and ts-1 parts
            assert retired.tolist() == list(range(16))
            assert node.n_partitions == before - 2
            assert builds == [], (
                f"retirement rebuilt tables (build row counts: {builds})"
            )
            # Capacity actually came back (drop, not tombstone).
            assert node.n_total == 14
            assert node.deletions.n_deleted == 0
        finally:
            node.close()

    def test_ragged_edge_is_tombstoned_not_dropped(self):
        node = _new_node()
        try:
            node.insert_batch(_POOL.slice_rows(0, 8))    # ts 0
            node.insert_batch(_POOL.slice_rows(8, 16))   # ts 1
            node.merge_now()  # one partition spanning ts 0..1
            retired = node.retire_before(1)
            assert retired.tolist() == list(range(8))
            assert node.n_partitions == 1  # nothing dropped...
            assert node.n_total == 16      # ...rows still resident
            assert node.deletions.n_deleted == 8  # ...but screened out
            q_cols, q_vals = _POOL.row(2)
            got = node.query(q_cols.astype(np.int64), q_vals)
            assert 2 not in set(got.indices.tolist())
        finally:
            node.close()

    def test_repeat_cutoff_is_a_noop_and_watermark_is_monotone(self):
        node, _ = self._staged()
        try:
            first = node.retire_before(2)
            assert first.size == 16
            assert node.retire_before(2).size == 0
            assert node.retire_before(1).size == 0  # never goes backwards
            # Advancing the cutoff reports only the NEW retirees.
            second = node.retire_before(3)
            assert second.tolist() == list(range(16, 24))
        finally:
            node.close()

    def test_retired_rows_vanish_from_answers_survivors_stay(self):
        node, cursor = self._staged()
        try:
            survivors_before = {
                r
                for r in range(cursor)
                if r
                in set(
                    np.concatenate(
                        [
                            node.query(
                                *(lambda c, v: (c.astype(np.int64), v))(
                                    *_POOL.row(r)
                                )
                            ).indices
                            for r in range(cursor)
                        ]
                    ).tolist()
                )
            }
            retired = set(node.retire_before(2).tolist())
            for row in range(cursor):
                q_cols, q_vals = _POOL.row(row)
                got = set(
                    node.query(q_cols.astype(np.int64), q_vals)
                    .indices.tolist()
                )
                assert not (got & retired), (
                    f"query {row} returned retired ids {got & retired}"
                )
                if row not in retired and row in survivors_before:
                    assert row in got, f"survivor {row} lost its own query"
        finally:
            node.close()

    def test_inserts_continue_after_retirement_with_stable_ids(self):
        node, cursor = self._staged()
        try:
            node.retire_before(2)
            fresh = node.insert_batch(_POOL.slice_rows(cursor, cursor + 4))
            # Id space never reuses dropped holes.
            assert fresh.tolist() == list(range(cursor, cursor + 4))
            assert node.id_space == cursor + 4
            q_cols, q_vals = _POOL.row(cursor)
            got = node.query(q_cols.astype(np.int64), q_vals)
            assert cursor in set(got.indices.tolist())
        finally:
            node.close()

    def test_retire_window_drops_everything_keeps_id_space(self):
        node, cursor = self._staged()
        try:
            dropped = node.retire_window()
            assert dropped.tolist() == list(range(cursor))
            assert node.n_total == 0
            assert node.id_space == cursor
            fresh = node.insert_batch(_POOL.slice_rows(0, 4))
            assert fresh.tolist() == list(range(cursor, cursor + 4))
        finally:
            node.close()

    def test_resident_mask_tracks_holes(self):
        node, cursor = self._staged()
        try:
            ids = np.arange(cursor, dtype=np.int64)
            assert node.resident_mask(ids).all()
            node.retire_before(2)
            mask = node.resident_mask(ids)
            assert not mask[:16].any()   # dropped partitions: holes
            assert mask[16:].all()       # survivors + delta: resident
        finally:
            node.close()


class TestMergeAcrossRoll:
    """A frozen delta straddling a partition roll lands exactly once, in
    the post-roll partition, with answers bit-identical throughout."""

    def test_frozen_straddling_a_roll_merges_into_new_partition(self):
        primary = _new_node(overlap_merges=True)
        shadow = _new_node()
        try:
            batch = _POOL.slice_rows(0, 24)
            primary.insert_batch(batch)
            shadow.insert_batch(batch)
            primary.merge_now()
            shadow.merge_now()
            tail = _POOL.slice_rows(24, 36)
            primary.insert_batch(tail)
            shadow.insert_batch(tail)
            assert primary.begin_merge()   # freeze 12 delta rows...
            seq_before = primary.static.newest.seq
            primary.roll_partition()       # ...then roll under the merge
            shadow.merge_now()
            # Mid-merge, post-roll: answers already bit-identical.
            queries = _POOL.slice_rows(0, 10)
            _assert_batches_identical(
                primary.query_batch(queries), shadow.query_batch(queries),
                "mid-merge post-roll",
            )
            assert primary.commit_merge(wait=True)
            # The frozen rows merged into the post-roll partition, not the
            # stale pre-roll build target.
            newest = primary.static.newest
            assert newest.seq != seq_before
            assert newest.n_items == 12
            assert primary.n_frozen == 0 and primary.n_delta == 0
            _assert_batches_identical(
                primary.query_batch(queries), shadow.query_batch(queries),
                "post-commit",
            )
        finally:
            primary.close()
            shadow.close()

    def test_merge_cost_scales_with_newest_partition_only(self, monkeypatch):
        """The partition-scoped-merge guarantee: merging a delta rebuilds
        a table over (newest partition + delta) rows — never the whole
        corpus."""
        node = _new_node()
        try:
            cursor = 0
            for _ in range(3):
                node.insert_batch(_POOL.slice_rows(cursor, cursor + 16))
                cursor += 16
                node.merge_now()
                node.roll_partition()
            node.insert_batch(_POOL.slice_rows(cursor, cursor + 8))
            builds = []
            orig = PLSHIndex.build

            def counting_build(self, vectors, **kwargs):
                builds.append(vectors.n_rows)
                return orig(self, vectors, **kwargs)

            monkeypatch.setattr(PLSHIndex, "build", counting_build)
            node.merge_now()
            assert builds == [8], (
                f"merge rebuilt {builds} rows; expected the 8-row newest "
                f"partition scope (corpus holds {node.n_total})"
            )
        finally:
            node.close()


class TestFacadeSurface:
    """PartitionedStatic's own invariants and guard rails."""

    def _facade(self) -> PartitionedStatic:
        node = _new_node()
        self._node = node
        return node.static

    def test_roll_on_empty_newest_is_a_noop(self):
        static = self._facade()
        try:
            first = static.newest
            assert static.roll() is first
            assert static.n_partitions == 1
        finally:
            self._node.close()

    def test_monolith_compat_views_guard_multi_partition(self):
        node = _new_node()
        try:
            node.insert_batch(_POOL.slice_rows(0, 8))
            node.merge_now()
            assert node.static.tables is not None  # single partition: fine
            node.roll_partition()
            node.insert_batch(_POOL.slice_rows(8, 16))
            node.merge_now()
            with pytest.raises(ValueError, match="monolithic view"):
                _ = node.static.tables
        finally:
            node.close()

    def test_commit_newest_rejects_timestamp_mismatch(self):
        static = self._facade()
        try:
            index = PLSHIndex(
                DIM, PARAMS, hasher=static.hasher
            ).build(_POOL.slice_rows(0, 4))
            with pytest.raises(ValueError, match="timestamps"):
                static.commit_newest(index, np.zeros(2, dtype=np.int64))
        finally:
            self._node.close()

    def test_from_partitions_validates_id_hi(self):
        static = self._facade()
        try:
            index = PLSHIndex(
                DIM, PARAMS, hasher=static.hasher
            ).build(_POOL.slice_rows(0, 4))
            part = StaticPartition(
                index, 0, np.zeros(4, dtype=np.int64), seq=0
            )
            with pytest.raises(ValueError, match="id_hi"):
                PartitionedStatic.from_partitions(
                    DIM, PARAMS, static.hasher, [part], id_hi=99
                )
            restored = PartitionedStatic.from_partitions(
                DIM, PARAMS, static.hasher, [part]
            )
            assert restored.id_hi == 4
            assert restored.n_partitions == 1
        finally:
            self._node.close()

    def test_manifest_rows_describe_every_partition(self):
        node = _new_node()
        try:
            node.insert_batch(_POOL.slice_rows(0, 8))   # ts 0
            node.merge_now()
            node.roll_partition()
            node.insert_batch(_POOL.slice_rows(8, 12))  # ts 1
            node.merge_now()
            rows = node.static.manifest()
            assert [r["base"] for r in rows] == [0, 8]
            assert [r["n_items"] for r in rows] == [8, 4]
            assert rows[0]["t_min"] == rows[0]["t_max"] == 0
            assert rows[1]["t_min"] == rows[1]["t_max"] == 1
            assert rows[0]["seq"] < rows[1]["seq"]
        finally:
            node.close()

    def test_partition_rejects_decreasing_timestamps(self):
        static = self._facade()
        try:
            index = PLSHIndex(
                DIM, PARAMS, hasher=static.hasher
            ).build(_POOL.slice_rows(0, 2))
            with pytest.raises(ValueError, match="non-decreasing"):
                StaticPartition(
                    index, 0, np.asarray([5, 3], dtype=np.int64), seq=0
                )
        finally:
            self._node.close()

    def test_insert_rejects_time_going_backwards(self):
        node = _new_node()
        try:
            node.insert_batch(
                _POOL.slice_rows(0, 4),
                timestamps=np.full(4, 10, dtype=np.int64),
            )
            with pytest.raises(ValueError, match="never goes backwards"):
                node.insert_batch(
                    _POOL.slice_rows(4, 6),
                    timestamps=np.full(2, 3, dtype=np.int64),
                )
            with pytest.raises(ValueError, match="non-decreasing"):
                node.insert_batch(
                    _POOL.slice_rows(4, 6),
                    timestamps=np.asarray([20, 15], dtype=np.int64),
                )
        finally:
            node.close()
