"""Gateway end-to-end semantics over a real in-process cluster.

The contracts under test, per the serving design:

* **bit identity** — a gateway answer (single or coalesced under real
  client concurrency) equals direct ``cluster.query`` bit for bit, ids
  and float32 distances, because the batch kernel matches the per-query
  loop and the JSON wire round-trips float32 exactly;
* **honest admission** — bounded queue and per-tenant quotas reject
  *explicitly* (``status="rejected"`` + ``retry_after``), never drop,
  and every request gets exactly one response;
* **clean shutdown** — ``close()`` drains: every admitted query is
  answered before its connection closes.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro import PLSHCluster, PLSHParams
from repro.serve import (
    Gateway,
    GatewayClient,
    GatewayRejected,
    run_closed_loop,
)
from repro.serve import protocol
from repro.sparse.csr import CSRMatrix

PARAMS = PLSHParams(k=8, m=6, radius=0.9, seed=77)


@pytest.fixture(scope="module")
def served_cluster(small_vectors):
    cluster = PLSHCluster(3, 250, small_vectors.n_cols, PARAMS,
                          insert_window=2)
    cluster.insert(small_vectors.slice_rows(0, 600))
    try:
        yield cluster
    finally:
        cluster.close()


class SlowCluster:
    """Delegates to a real cluster after a fixed delay — lets admission
    tests pile up a backlog deterministically."""

    def __init__(self, cluster, delay: float) -> None:
        self._cluster = cluster
        self.delay = delay

    def query_batch(self, queries, *, radius=None):
        time.sleep(self.delay)
        return self._cluster.query_batch(queries, radius=radius)


class RawConn:
    """A bare pipelining connection: write N requests, then read answers."""

    def __init__(self, host: str, port: int) -> None:
        self.sock = socket.create_connection((host, port), timeout=30)
        self.file = self.sock.makefile("rwb")

    def send(self, message: dict) -> None:
        self.file.write(protocol.encode(message))
        self.file.flush()

    def recv(self) -> dict:
        line = self.file.readline(protocol.MAX_LINE_BYTES)
        assert line, "gateway closed the connection unexpectedly"
        return protocol.decode(line)

    def recv_all(self, n: int) -> list[dict]:
        return [self.recv() for _ in range(n)]

    def close(self) -> None:
        try:
            self.file.close()
        finally:
            self.sock.close()


class TestBitIdentity:
    def test_single_query_matches_direct(self, served_cluster, small_vectors):
        with Gateway(served_cluster, small_vectors.n_cols) as gw:
            with GatewayClient(gw.host, gw.port) as client:
                for r in range(6):
                    cols, vals = small_vectors.row(r)
                    answer = client.query(cols, vals)
                    direct = served_cluster.query(
                        cols.astype(np.int64), vals
                    ).result
                    np.testing.assert_array_equal(answer.ids, direct.indices)
                    np.testing.assert_array_equal(
                        answer.distances, direct.distances
                    )
                    assert answer.distances.dtype == np.float32
                    assert not answer.degraded

    def test_coalesced_answers_match_direct(self, served_cluster, small_vectors):
        """Real concurrency → real coalescing → still bit-identical,
        each answer de-multiplexed to the right request."""
        n_rows = 24
        reference = []
        for r in range(n_rows):
            cols, vals = small_vectors.row(r)
            res = served_cluster.query(cols.astype(np.int64), vals).result
            reference.append((res.indices.copy(), res.distances.copy()))

        with Gateway(served_cluster, small_vectors.n_cols, max_batch=16) as gw:
            errors: list = []
            barrier = threading.Barrier(8)

            def worker(rows):
                try:
                    with GatewayClient(gw.host, gw.port) as client:
                        barrier.wait(timeout=30)
                        for r in rows:
                            cols, vals = small_vectors.row(r)
                            answer = client.query(cols, vals)
                            ref_ids, ref_dists = reference[r]
                            np.testing.assert_array_equal(answer.ids, ref_ids)
                            np.testing.assert_array_equal(
                                answer.distances, ref_dists
                            )
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(
                    target=worker, args=(range(t, n_rows, 8),)
                )
                for t in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
                assert not thread.is_alive()
            if errors:
                raise errors[0]
            stats = gw.stats()
        assert stats["answered"] == n_rows
        # Coalescing actually engaged: fewer batches than queries.
        assert stats["batcher"]["n_batches"] < n_rows
        assert stats["batcher"]["mean_batch_size"] > 1.0

    def test_per_query_radius_override(self, served_cluster, small_vectors):
        cols, vals = small_vectors.row(3)
        with Gateway(served_cluster, small_vectors.n_cols) as gw:
            with GatewayClient(gw.host, gw.port) as client:
                wide = client.query(cols, vals, radius=1.4)
                tight = client.query(cols, vals, radius=0.3)
        direct_wide = served_cluster.query(
            cols.astype(np.int64), vals, radius=1.4
        ).result
        np.testing.assert_array_equal(wide.ids, direct_wide.indices)
        assert len(tight) <= len(wide)


class TestAdmissionControl:
    def test_overload_rejected_explicitly(self, served_cluster, small_vectors):
        slow = SlowCluster(served_cluster, delay=0.25)
        with Gateway(
            slow, small_vectors.n_cols,
            max_batch=1, max_delay=0.0, max_concurrent_batches=1,
            max_pending=2,
        ) as gw:
            conn = RawConn(gw.host, gw.port)
            try:
                n = 8
                for i in range(n):
                    cols, vals = small_vectors.row(i)
                    conn.send(
                        protocol.query_request(cols, vals, request_id=i)
                    )
                responses = conn.recv_all(n)
            finally:
                conn.close()
        # Exactly one response per request, ids echoed.
        assert sorted(r["id"] for r in responses) == list(range(n))
        by_status: dict[str, int] = {}
        for r in responses:
            by_status[r["status"]] = by_status.get(r["status"], 0) + 1
            if r["status"] == "rejected":
                assert r["reason"] == "overloaded"
                assert r["retry_after"] > 0
        assert by_status.get("ok", 0) >= 2      # the admitted ones answered
        assert by_status.get("rejected", 0) >= 1  # the rest shed honestly
        assert by_status.get("error", 0) == 0

    def test_tenant_quota_isolates_noisy_neighbor(
        self, served_cluster, small_vectors
    ):
        slow = SlowCluster(served_cluster, delay=0.25)
        with Gateway(
            slow, small_vectors.n_cols,
            max_batch=1, max_delay=0.0, max_concurrent_batches=1,
            max_pending=64, tenant_quota=2,
        ) as gw:
            noisy = RawConn(gw.host, gw.port)
            quiet = RawConn(gw.host, gw.port)
            try:
                for i in range(6):
                    cols, vals = small_vectors.row(i)
                    noisy.send(
                        protocol.query_request(
                            cols, vals, request_id=i, tenant="noisy"
                        )
                    )
                # Give admission a moment to count the noisy backlog.
                time.sleep(0.05)
                cols, vals = small_vectors.row(10)
                quiet.send(
                    protocol.query_request(
                        cols, vals, request_id=99, tenant="quiet"
                    )
                )
                quiet_answer = quiet.recv()
                noisy_answers = noisy.recv_all(6)
            finally:
                noisy.close()
                quiet.close()
        # The quiet tenant rides through untouched by the noisy backlog.
        assert quiet_answer["status"] == "ok"
        rejected = [r for r in noisy_answers if r["status"] == "rejected"]
        assert rejected and all(r["reason"] == "quota" for r in rejected)
        assert all(r["status"] != "error" for r in noisy_answers)

    def test_quota_rejection_raises_typed_error(
        self, served_cluster, small_vectors
    ):
        slow = SlowCluster(served_cluster, delay=0.3)
        with Gateway(
            slow, small_vectors.n_cols,
            max_batch=1, max_delay=0.0, max_concurrent_batches=1,
            tenant_quota=1,
        ) as gw:
            conn = RawConn(gw.host, gw.port)
            try:
                cols, vals = small_vectors.row(0)
                conn.send(protocol.query_request(cols, vals, request_id=1))
                time.sleep(0.05)  # first query now owns the tenant quota
                with GatewayClient(gw.host, gw.port) as client:
                    with pytest.raises(GatewayRejected) as excinfo:
                        client.query(cols, vals)
                assert excinfo.value.reason == "quota"
                assert excinfo.value.retry_after > 0
                assert conn.recv()["status"] == "ok"
            finally:
                conn.close()


class TestProtocolEdges:
    def test_malformed_requests_get_errors(self, served_cluster, small_vectors):
        with Gateway(served_cluster, small_vectors.n_cols) as gw:
            conn = RawConn(gw.host, gw.port)
            try:
                conn.file.write(b"this is not json\n")
                conn.file.flush()
                assert conn.recv()["status"] == "error"
                conn.send({"op": "query", "cols": [0, 1]})  # no vals
                assert conn.recv()["status"] == "error"
                conn.send({"op": "query", "cols": [10**9], "vals": [1.0]})
                out_of_range = conn.recv()
                assert out_of_range["status"] == "error"
                assert "out of range" in out_of_range["error"]
                conn.send({"op": "frobnicate"})
                assert conn.recv()["status"] == "error"
                # The connection survived all of it.
                conn.send({"op": "ping"})
                assert conn.recv()["status"] == "ok"
            finally:
                conn.close()

    def test_ping_and_stats(self, served_cluster, small_vectors):
        with Gateway(served_cluster, small_vectors.n_cols) as gw:
            with GatewayClient(gw.host, gw.port) as client:
                assert client.ping()
                cols, vals = small_vectors.row(0)
                client.query(cols, vals)
                stats = client.stats()
        assert stats["admitted"] == 1
        assert stats["answered"] == 1
        assert stats["pending"] == 0
        assert stats["batcher"]["n_queries"] == 1
        assert stats["config"]["max_batch"] == 256


class TestShutdown:
    def test_close_drains_admitted_queries(self, served_cluster, small_vectors):
        """Every admitted query is answered across shutdown — close() is
        a drain, not an abort."""
        slow = SlowCluster(served_cluster, delay=0.2)
        gw = Gateway(
            slow, small_vectors.n_cols,
            max_batch=2, max_delay=0.01, max_concurrent_batches=1,
        ).start()
        conn = RawConn(gw.host, gw.port)
        try:
            n = 4
            for i in range(n):
                cols, vals = small_vectors.row(i)
                conn.send(protocol.query_request(cols, vals, request_id=i))
            time.sleep(0.1)  # all four admitted, first batch in flight
            gw.close()  # blocks until the drain finishes
            responses = conn.recv_all(n)
        finally:
            conn.close()
        assert sorted(r["id"] for r in responses) == list(range(n))
        assert all(r["status"] == "ok" for r in responses)

    def test_queries_during_drain_rejected_not_dropped(
        self, served_cluster, small_vectors
    ):
        slow = SlowCluster(served_cluster, delay=0.3)
        gw = Gateway(
            slow, small_vectors.n_cols, max_batch=1, max_delay=0.0,
        ).start()
        conn = RawConn(gw.host, gw.port)
        try:
            cols, vals = small_vectors.row(0)
            conn.send(protocol.query_request(cols, vals, request_id=1))
            time.sleep(0.05)
            closer = threading.Thread(target=gw.close)
            closer.start()
            time.sleep(0.05)  # drain underway, first query still running
            conn.send(protocol.query_request(cols, vals, request_id=2))
            by_id = {r["id"]: r for r in conn.recv_all(2)}
            closer.join(timeout=30)
            assert not closer.is_alive()
        finally:
            conn.close()
        assert by_id[1]["status"] == "ok"
        # The late query got an explicit rejection, not silence.
        assert by_id[2]["status"] == "rejected"
        assert by_id[2]["reason"] == "shutdown"

    def test_double_close_is_idempotent(self, served_cluster, small_vectors):
        gw = Gateway(served_cluster, small_vectors.n_cols).start()
        gw.close()
        gw.close()


class TestLoadGenerator:
    def test_closed_loop_report(self, served_cluster, small_vectors):
        queries = CSRMatrix.from_rows(
            [small_vectors.row(r) for r in range(32)], small_vectors.n_cols
        )
        with Gateway(served_cluster, small_vectors.n_cols, max_batch=32) as gw:
            report = run_closed_loop(
                gw.host, gw.port, queries,
                n_clients=12, requests_per_client=4,
            )
        assert report.n_ok == 48
        assert report.n_errors == 0
        assert report.p50_ms > 0
        assert report.p99_ms >= report.p50_ms
        assert report.qps > 0
        # 12 closed-loop clients must coalesce beyond singleton batches.
        assert report.mean_batch_size > 1.0
