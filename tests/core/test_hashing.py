"""All-pairs hashing tests: packing, key formation, determinism."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashing import AllPairsHasher, pack_bits, pack_bits_reference
from repro.params import PLSHParams
from repro.sparse.csr import CSRMatrix


def unit_csr(rng, n, dim):
    dense = rng.standard_normal((n, dim)).astype(np.float32)
    dense /= np.linalg.norm(dense, axis=1, keepdims=True)
    return CSRMatrix.from_dense(dense)


class TestPackBits:
    def test_known_value(self):
        bits = np.asarray([[1, 0, 1, 1, 0, 0]], dtype=np.uint8)
        out = pack_bits(bits, 3)
        # groups (1,0,1) and (1,0,0), MSB first: 5 and 4
        np.testing.assert_array_equal(out, [[5, 4]])

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            pack_bits(np.zeros((1, 7), dtype=np.uint8), 3)

    def test_rejects_wide_functions(self):
        with pytest.raises(ValueError):
            pack_bits(np.zeros((1, 34), dtype=np.uint8), 17)

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_matches_reference(self, data):
        n = data.draw(st.integers(1, 6))
        b = data.draw(st.integers(1, 8))
        m = data.draw(st.integers(1, 5))
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        bits = rng.integers(0, 2, size=(n, m * b)).astype(np.uint8)
        np.testing.assert_array_equal(
            pack_bits(bits, b), pack_bits_reference(bits, b)
        )


class TestAllPairsHasher:
    def test_hash_functions_shape_and_range(self, rng):
        params = PLSHParams(k=8, m=6, seed=0)
        hasher = AllPairsHasher(params, 40)
        u = hasher.hash_functions(unit_csr(rng, 12, 40))
        assert u.shape == (12, 6)
        assert u.dtype == np.uint16
        assert int(u.max()) < params.n_buckets_per_level

    def test_deterministic_across_instances(self, rng):
        params = PLSHParams(k=8, m=6, seed=5)
        vecs = unit_csr(rng, 10, 40)
        u1 = AllPairsHasher(params, 40).hash_functions(vecs)
        u2 = AllPairsHasher(params, 40).hash_functions(vecs)
        np.testing.assert_array_equal(u1, u2)

    def test_table_key_combines_pair(self, rng):
        params = PLSHParams(k=8, m=5, seed=0)
        hasher = AllPairsHasher(params, 30)
        u = hasher.hash_functions(unit_csr(rng, 8, 30))
        for l, (i, j) in enumerate(hasher.pairs):
            expected = (u[:, i].astype(np.uint32) << 4) | u[:, j]
            np.testing.assert_array_equal(hasher.table_key(u, l), expected)

    def test_query_keys_match_per_table_keys(self, rng):
        params = PLSHParams(k=8, m=5, seed=0)
        hasher = AllPairsHasher(params, 30)
        u = hasher.hash_functions(unit_csr(rng, 3, 30))
        keys = hasher.table_keys_for_query(u[1])
        for l in range(params.n_tables):
            assert keys[l] == hasher.table_key(u, l)[1]

    def test_table_index_inverse_of_pairs(self):
        params = PLSHParams(k=8, m=7, seed=0)
        hasher = AllPairsHasher(params, 10)
        for l, (i, j) in enumerate(hasher.pairs):
            assert hasher.table_index(i, j) == l

    def test_number_of_tables(self):
        params = PLSHParams(k=8, m=9, seed=0)
        hasher = AllPairsHasher(params, 10)
        assert hasher.n_tables == 36 == len(hasher.pairs)

    def test_similar_vectors_share_more_functions(self, rng):
        """Core LSH property: closer pairs collide on more u_i."""
        params = PLSHParams(k=8, m=32, seed=2)
        dim = 60
        hasher = AllPairsHasher(params, dim)
        a = rng.standard_normal(dim)
        a /= np.linalg.norm(a)
        perp = rng.standard_normal(dim)
        perp -= (perp @ a) * a
        perp /= np.linalg.norm(perp)
        near = np.cos(0.2) * a + np.sin(0.2) * perp
        far = np.cos(1.4) * a + np.sin(1.4) * perp
        vecs = CSRMatrix.from_dense(
            np.vstack([a, near, far]).astype(np.float32)
        )
        u = hasher.hash_functions(vecs)
        near_matches = int((u[0] == u[1]).sum())
        far_matches = int((u[0] == u[2]).sum())
        assert near_matches > far_matches
