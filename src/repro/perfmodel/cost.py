"""The paper's hardware cost model (Section 7.1), in cycles and seconds.

Every constant below is lifted from the paper's derivation for the Xeon
E5-2670 testbed (2.6 GHz, 32 GB/s ≈ 12.3 bytes/cycle, 8 cores, 8-wide AVX):

Query (per query):
* Step Q2 — bitvector update: ~11 ops per collision, parallelized over T
  cores → ``11/T`` cycles per collision; plus a bitvector scan of
  ``14/T`` cycles per 32 bits of N.
* Step Q3 — candidate load + sparse dot: ~256 bytes of traffic per unique
  candidate → ``256 / bw_bytes_per_cycle`` ≈ 20.8, +1 cycle compute
  → ≈ 21.8 cycles per unique candidate.

Construction (per tweet):
* Hashing — 11 ops per (non-zero, hash bit), parallelized over T cores and
  S SIMD lanes: ``NNZ * m * k/2 * 11 / (T * S)`` cycles.
* Step I1 — 24 bytes of traffic per item per first-level partition:
  ``24 * m / bw`` cycles.
* Steps I2/I3 — 16 bytes per item per table each: ``16 * L / bw`` cycles.

The paper validates this model to 15-25 % (Figures 6/7); our benches do the
same against the *calibrated host* model (see calibrate.py), and ship this
paper model for parameter studies on the paper's hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HardwareSpec", "PAPER_HARDWARE", "PaperCostModel", "QueryCostBreakdown", "CreationCostBreakdown"]


@dataclass(frozen=True)
class HardwareSpec:
    """Machine constants feeding the cycle model."""

    frequency_hz: float = 2.6e9
    bandwidth_bytes_per_s: float = 32e9
    n_cores: int = 8
    simd_width: int = 8  # float32 lanes of AVX

    @property
    def bandwidth_bytes_per_cycle(self) -> float:
        return self.bandwidth_bytes_per_s / self.frequency_hz

    def seconds(self, cycles: float) -> float:
        return cycles / self.frequency_hz


#: The paper's evaluation machine: Intel Xeon E5-2670.
PAPER_HARDWARE = HardwareSpec()


@dataclass(frozen=True)
class QueryCostBreakdown:
    """Predicted per-query cost (seconds), by pipeline stage."""

    q2_bitvector_s: float
    q3_search_s: float

    @property
    def total_s(self) -> float:
        return self.q2_bitvector_s + self.q3_search_s


@dataclass(frozen=True)
class CreationCostBreakdown:
    """Predicted construction cost (seconds), by stage, for N items."""

    hashing_s: float
    i1_s: float
    i2_s: float
    i3_s: float

    @property
    def insertion_s(self) -> float:
        return self.i1_s + self.i2_s + self.i3_s

    @property
    def total_s(self) -> float:
        return self.hashing_s + self.insertion_s


class PaperCostModel:
    """Section 7.1's cycle model over a :class:`HardwareSpec`."""

    #: ops per collision for the bitvector update (Section 7.1.1)
    OPS_PER_COLLISION = 11.0
    #: ops per 32 bits of the bitvector scan
    OPS_PER_SCAN_WORD = 14.0
    #: bytes of memory traffic per unique candidate (4 cache lines)
    BYTES_PER_UNIQUE = 256.0
    #: extra compute cycles per unique candidate (dot product)
    COMPUTE_PER_UNIQUE = 1.0
    #: ops per (hash bit x non-zero) during hashing
    OPS_PER_HASH_NNZ = 11.0
    #: bytes per item per first-level partition (Step I1)
    I1_BYTES = 24.0
    #: bytes per item per table for Steps I2 and I3, each
    I23_BYTES = 16.0

    def __init__(self, hardware: HardwareSpec = PAPER_HARDWARE) -> None:
        self.hw = hardware

    # -- per-unit costs ------------------------------------------------------

    def tq2_cycles_per_collision(self) -> float:
        """Bitvector update cycles per (duplicated) collision."""
        return self.OPS_PER_COLLISION / self.hw.n_cores

    def tq2_scan_cycles(self, n: int) -> float:
        """Bitvector scan cycles (depends on N only)."""
        return self.OPS_PER_SCAN_WORD / self.hw.n_cores * (n / 32.0)

    def tq3_cycles_per_unique(self) -> float:
        """Candidate load + sparse-dot cycles per unique candidate."""
        return (
            self.BYTES_PER_UNIQUE / self.hw.bandwidth_bytes_per_cycle
            + self.COMPUTE_PER_UNIQUE
        )

    # -- query ---------------------------------------------------------------

    def query_cost(
        self, n: int, expected_collisions: float, expected_unique: float
    ) -> QueryCostBreakdown:
        """Predicted per-query cost from the sampled collision statistics."""
        q2 = self.tq2_cycles_per_collision() * expected_collisions
        q2 += self.tq2_scan_cycles(n)
        q3 = self.tq3_cycles_per_unique() * expected_unique
        return QueryCostBreakdown(
            q2_bitvector_s=self.hw.seconds(q2),
            q3_search_s=self.hw.seconds(q3),
        )

    # -- construction -----------------------------------------------------------

    def hashing_cycles_per_item(self, nnz: float, k: int, m: int) -> float:
        ops = nnz * m * (k / 2) * self.OPS_PER_HASH_NNZ
        return ops / (self.hw.n_cores * self.hw.simd_width)

    def creation_cost(self, n: int, nnz: float, k: int, m: int) -> CreationCostBreakdown:
        """Predicted construction cost for N items of mean sparsity NNZ."""
        L = m * (m - 1) // 2
        bw = self.hw.bandwidth_bytes_per_cycle
        hashing = self.hashing_cycles_per_item(nnz, k, m) * n
        i1 = self.I1_BYTES * m / bw * n
        i2 = self.I23_BYTES * L / bw * n
        i3 = self.I23_BYTES * L / bw * n
        return CreationCostBreakdown(
            hashing_s=self.hw.seconds(hashing),
            i1_s=self.hw.seconds(i1),
            i2_s=self.hw.seconds(i2),
            i3_s=self.hw.seconds(i3),
        )

    def merge_optimality_bound(self) -> float:
        """Section 6.2's bound: rebuild traffic / minimal merge traffic.

        Rebuild writes ~32 bytes per entry per table; any merge must move at
        least 12 → no merge beats the rebuild by more than ~2.67x.
        """
        return 32.0 / 12.0
