"""Streaming PLSH (Section 6): delta tables, merge, deletion, node policy.

New data is buffered in an insert-optimized **delta table**; queries consult
both static and delta structures and combine answers.  When the delta
reaches a fraction ``eta`` of node capacity it is merged into the static
structure (a partition-bound rebuild over cached hash codes).  Deletions are
a bitvector consulted before the distance computation.  The node enforces a
hard capacity; retirement (wholesale erase) is driven by the cluster layer.
"""

from repro.streaming.delta import DeltaTable
from repro.streaming.deletion import DeletionFilter
from repro.streaming.merge import merge_into_static
from repro.streaming.node import StreamingPLSH

__all__ = ["DeletionFilter", "DeltaTable", "StreamingPLSH", "merge_into_static"]
