"""Cluster-level metrics: load imbalance and communication fraction."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["load_imbalance", "communication_fraction", "aggregate_node_seconds"]


def load_imbalance(per_node_seconds: Sequence[float]) -> float:
    """The paper's load-balance metric: max / average runtime (ideal 1.0)."""
    values = [s for s in per_node_seconds if s >= 0]
    if not values:
        return 1.0
    avg = sum(values) / len(values)
    if avg == 0:
        return 1.0
    return max(values) / avg


def communication_fraction(network_seconds: float, compute_seconds: float) -> float:
    """Share of modeled runtime spent in communication (paper: < 1 %)."""
    total = network_seconds + compute_seconds
    if total == 0:
        return 0.0
    return network_seconds / total


def aggregate_node_seconds(outcomes: Iterable) -> dict[int, float]:
    """Sum per-node seconds across a batch of BroadcastOutcomes."""
    totals: dict[int, float] = {}
    for outcome in outcomes:
        for node_id, secs in outcome.node_seconds.items():
            totals[node_id] = totals.get(node_id, 0.0) + secs
    return totals
