"""Figure 6 — estimated vs actual runtimes for PLSH creation & querying.

Paper: the Section 7 model predicts per-stage creation times (hashing, I1,
I2, I3) and per-stage query times (Q2 bitvector, Q3 search) within 15 %
(Twitter) / 25 % (Wikipedia).

This bench does the same experiment with the host-calibrated model:
constants are fit on a *calibration slice* of the corpus, the model then
predicts the *full-scale* run, and both stage-level estimates and actuals
are printed with their error.  Shape to check: errors within a few tens of
percent, and the model correctly ranks the expensive stages.
"""

from __future__ import annotations

from repro import PLSHIndex
from repro.bench.reporting import format_table, print_section
from repro.bench.runner import measure
from repro.perfmodel.calibrate import calibrate_host
from repro.perfmodel.collisions import estimate_collision_stats


def test_fig6_model_validation(benchmark, twitter, scale):
    params = scale.params()
    vectors = twitter.vectors
    queries = twitter.queries

    # Calibrate on a quarter-scale slice.
    calib = calibrate_host(
        vectors.slice_rows(0, max(vectors.n_rows // 4, 1000)),
        params,
        n_calibration_queries=40,
        seed=7,
    )

    # --- creation: predict, then measure at full scale
    nnz = vectors.nnz / vectors.n_rows
    predicted_creation = calib.creation_cost(
        vectors.n_rows, nnz, params.k, params.m
    )
    index = PLSHIndex(vectors.n_cols, params)
    _, actual_creation_s = measure(lambda: index.build(vectors))
    actual_hash = index.build_times["hashing"]
    actual_insert = index.build_times["insertion"]

    # --- query: predict from sampled collision stats, then measure
    stats = estimate_collision_stats(
        vectors, queries, params.k, params.m,
        n_query_sample=min(200, queries.n_rows), n_data_sample=1000, seed=7,
    )
    predicted_query = calib.query_cost(
        vectors.n_rows,
        stats.expected_collisions,
        stats.expected_unique,
        n_tables=params.n_tables,
    )
    engine = index.engine
    assert engine is not None
    results = benchmark.pedantic(
        lambda: engine.query_batch(queries, mode="loop"), rounds=3, iterations=1
    )
    # mode="loop": the cost model is calibrated on the per-query pipeline.
    _, actual_query_s = measure(lambda: engine.query_batch(queries, mode="loop"))
    per_query_actual = actual_query_s / queries.n_rows
    st = engine.stats.stage_times
    total_stage = max(st["q2_dedup"] + st["q3_distance"], 1e-12)
    actual_q2 = per_query_actual * st["q2_dedup"] / total_stage
    actual_q3 = per_query_actual * st["q3_distance"] / total_stage

    def err(est, act):
        return abs(est - act) / max(act, 1e-12) * 100

    rows = [
        ["creation: hashing", predicted_creation.hashing_s, actual_hash,
         err(predicted_creation.hashing_s, actual_hash)],
        ["creation: insertion (I1-I3)", predicted_creation.insertion_s,
         actual_insert, err(predicted_creation.insertion_s, actual_insert)],
        ["creation: total", predicted_creation.total_s, actual_creation_s,
         err(predicted_creation.total_s, actual_creation_s)],
        ["query: Q2 bitvector (per q)", predicted_query.q2_bitvector_s,
         actual_q2, err(predicted_query.q2_bitvector_s, actual_q2)],
        ["query: Q3 search (per q)", predicted_query.q3_search_s, actual_q3,
         err(predicted_query.q3_search_s, actual_q3)],
        ["query: total (per q)", predicted_query.total_s, per_query_actual,
         err(predicted_query.total_s, per_query_actual)],
    ]
    print_section(
        f"Figure 6 — estimated vs actual (N={vectors.n_rows:,}, "
        f"{queries.n_rows} queries)",
        format_table(["component", "estimated s", "actual s", "error %"], rows)
        + "\npaper: model within 15-25 % of actual",
    )

    # Shape: total predictions within 2x at this scale (the paper's native
    # constants achieve 15-25 %; a Python stack is noisier but must stay in
    # the same magnitude).
    assert err(predicted_creation.total_s, actual_creation_s) < 100
    assert err(predicted_query.total_s, per_query_actual) < 100
