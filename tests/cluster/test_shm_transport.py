"""Shared-memory transport: negotiation, fallback, cleanup, zero-copy.

The zero-copy contract (PR 7): on a same-host connection the hot-path
arrays — query CSR buffers, result ids/distances — travel through
``plsh-ring-*`` shared-memory segments while TCP carries only control
frames.  Guarantees under test:

* the transport negotiates per connection and degrades to framed TCP
  whenever shm is unavailable (``PLSH_SHM=0``), declined, or too big;
* answers are **bit-identical** over shm, TCP, and mixed clusters;
* segment hygiene — the client owns both rings, so no ``/dev/shm`` entry
  survives ``close``/``shutdown``, even for a SIGKILLed node;
* the hot path performs **zero pickle calls** and **zero copies of the
  CSR data buffer** on receive (views straight into the ring);
* compact wire dtypes round-trip exactly (int32 ids) or within
  half-precision tolerance (float16 scores), and the calibrated
  NetworkModel tracks measured bytes within 2x.
"""

from __future__ import annotations

import pickle
import socket

import numpy as np
import pytest

from repro import PLSHCluster, PLSHParams
from repro.cluster import protocol, spawn_local_cluster
from repro.cluster.shm import (
    SHM_NAME_PREFIX,
    ShmRing,
    leaked_segments,
    shm_available,
)
from repro.cluster.transport import Connection, ShmConnection, TransportStats
from repro.parallel import fork_available

PARAMS = PLSHParams(k=8, m=6, radius=0.9, seed=77)
N_NODES = 3
CAPACITY = 700

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="spawn_local_cluster requires fork()"
)

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="no usable /dev/shm on this host"
)


def _fill(cluster, vectors, n: int) -> None:
    cluster.insert(vectors.slice_rows(0, n))
    cluster.merge_all()


def _outcomes_equal(a_outcomes, b_outcomes, *, exact_scores: bool = True):
    assert len(a_outcomes) == len(b_outcomes)
    for a, b in zip(a_outcomes, b_outcomes):
        np.testing.assert_array_equal(a.result.indices, b.result.indices)
        if exact_scores:
            np.testing.assert_array_equal(a.result.distances, b.result.distances)


@pytest.fixture(scope="module")
def queries(small_vectors):
    return small_vectors.gather_rows(np.arange(0, 1500, 11, dtype=np.int64))


@pytest.fixture(scope="module")
def sim_outcomes(small_vectors, queries):
    """In-process oracle answers for the same fill."""
    with PLSHCluster(
        N_NODES, CAPACITY, small_vectors.n_cols, PARAMS, insert_window=2
    ) as sim:
        _fill(sim, small_vectors, 1500)
        yield sim.query_batch(queries)


class TestNegotiation:
    @needs_shm
    def test_shm_active_and_bit_identical(self, small_vectors, queries, sim_outcomes):
        with spawn_local_cluster(
            N_NODES, CAPACITY, small_vectors.n_cols, PARAMS, insert_window=2
        ) as rpc:
            assert all(h.shm_active for h in rpc.nodes)
            _fill(rpc, small_vectors, 1500)
            _outcomes_equal(sim_outcomes, rpc.query_batch(queries))
            totals = rpc.coordinator.transport_totals()
            # Hot payloads rode the rings, not the socket.
            assert totals["shm_bytes_sent"] > 0
            assert totals["shm_bytes_received"] > 0
            assert totals["total_bytes"] == (
                totals["bytes_sent"] + totals["bytes_received"]
                + totals["shm_bytes_sent"] + totals["shm_bytes_received"]
            )

    def test_env_knob_falls_back_to_tcp(
        self, small_vectors, queries, sim_outcomes, monkeypatch
    ):
        """PLSH_SHM=0 (or any shm unavailability) must degrade to the
        framed-TCP path with identical answers."""
        monkeypatch.setenv("PLSH_SHM", "0")
        assert not shm_available()
        with spawn_local_cluster(
            N_NODES, CAPACITY, small_vectors.n_cols, PARAMS, insert_window=2
        ) as rpc:
            assert not any(h.shm_active for h in rpc.nodes)
            _fill(rpc, small_vectors, 1500)
            _outcomes_equal(sim_outcomes, rpc.query_batch(queries))
            totals = rpc.coordinator.transport_totals()
            assert totals["shm_bytes_sent"] == 0
            assert totals["shm_bytes_received"] == 0

    @needs_shm
    def test_mixed_shm_and_tcp_nodes(self, small_vectors, queries, sim_outcomes):
        with spawn_local_cluster(
            N_NODES, CAPACITY, small_vectors.n_cols, PARAMS, insert_window=2,
            shm={0: True, 1: False, 2: True},
        ) as rpc:
            assert [h.shm_active for h in rpc.nodes] == [True, False, True]
            _fill(rpc, small_vectors, 1500)
            _outcomes_equal(sim_outcomes, rpc.query_batch(queries))

    @needs_shm
    def test_oversized_payload_falls_back_inline(
        self, small_vectors, queries, sim_outcomes
    ):
        """A payload bigger than the ring degrades per-message to inline
        TCP arrays — nothing breaks, nothing is truncated."""
        with spawn_local_cluster(
            N_NODES, CAPACITY, small_vectors.n_cols, PARAMS, insert_window=2,
            shm_size=4096,  # smaller than any insert block
        ) as rpc:
            assert all(h.shm_active for h in rpc.nodes)
            _fill(rpc, small_vectors, 1500)
            _outcomes_equal(sim_outcomes, rpc.query_batch(queries))


class TestCleanup:
    @needs_shm
    def test_no_leaked_segments_after_close(self, small_vectors):
        before = leaked_segments()
        rpc = spawn_local_cluster(
            N_NODES, CAPACITY, small_vectors.n_cols, PARAMS, insert_window=2
        )
        try:
            assert len(leaked_segments()) >= len(before) + 2 * N_NODES
            rpc.insert(small_vectors.slice_rows(0, 200))
        finally:
            rpc.close()
        assert leaked_segments() == before

    @needs_shm
    def test_no_leaked_segments_after_kill_node(self, small_vectors):
        """A SIGKILLed server can never unlink anything — cleanup is
        wholly client-side, so the rings still disappear on close."""
        before = leaked_segments()
        rpc = spawn_local_cluster(
            N_NODES, CAPACITY, small_vectors.n_cols, PARAMS, insert_window=2
        )
        try:
            rpc.insert(small_vectors.slice_rows(0, 200))
            rpc.kill_node(1)
        finally:
            rpc.close()
        assert leaked_segments() == before


class TestScoreDtype:
    @needs_shm
    def test_float16_scores_within_radius_tolerance(
        self, small_vectors, queries, sim_outcomes
    ):
        """float16 halves the score column; ids stay exact and every
        distance lands within half-precision rounding of the oracle."""
        with spawn_local_cluster(
            N_NODES, CAPACITY, small_vectors.n_cols, PARAMS, insert_window=2,
            score_dtype="float16",
        ) as rpc:
            _fill(rpc, small_vectors, 1500)
            got = rpc.query_batch(queries)
            _outcomes_equal(sim_outcomes, got, exact_scores=False)
            for sim, rpc_out in zip(sim_outcomes, got):
                a = sim.result.distances
                b = rpc_out.result.distances
                assert b.dtype == np.float32
                np.testing.assert_array_equal(a.astype(np.float16), b.astype(np.float16))
                # Half-precision relative error stays far inside the
                # radius filter's resolution (eps_f16 ~ 1e-3 << 0.9).
                np.testing.assert_allclose(b, a, rtol=2e-3, atol=2e-3)

    def test_unknown_score_dtype_rejected(self):
        from repro.cluster.client import RemoteNodeHandle

        with pytest.raises(ValueError):
            RemoteNodeHandle(0, "127.0.0.1", 1, 10, score_dtype="float8")


class TestCompactDtypes:
    def test_compact_ids_round_trip_exact(self):
        for arr in (
            np.array([], dtype=np.int64),
            np.arange(5, dtype=np.int64),
            np.array([0, 2**31 - 1], dtype=np.int64),
            np.array([-(2**31), 7], dtype=np.int64),
        ):
            wire = protocol.compact_ids(arr)
            assert wire.dtype == np.int32 or arr.size == 0
            np.testing.assert_array_equal(protocol.widen_ids(wire), arr)

    def test_compact_ids_keeps_wide_values(self):
        arr = np.array([0, 2**31], dtype=np.int64)
        assert protocol.compact_ids(arr) is arr
        arr = np.array([-(2**31) - 1], dtype=np.int64)
        assert protocol.compact_ids(arr) is arr

    def test_float16_on_the_wire(self):
        dists = np.array([0.125, 0.5, 1.0], dtype=np.float16)
        body = protocol.encode_message(protocol.STATUS_OK, {}, [dists])
        _, _, (back,) = protocol.decode_message(body)
        assert back.dtype == np.float16
        np.testing.assert_array_equal(back, dists)

    def test_compact_csr_round_trip(self, small_vectors):
        block = small_vectors.slice_rows(0, 50)
        arrays = protocol.csr_to_arrays(block, compact=True)
        assert arrays[0].dtype == np.int32  # indptr narrowed
        body = protocol.encode_message(protocol.OP_QUERY_BATCH, {}, arrays)
        _, _, (indptr, indices, data) = protocol.decode_message(body)
        rebuilt = protocol.arrays_to_csr(indptr, indices, data, block.n_cols)
        assert rebuilt.indptr.dtype == np.int64  # widened on receipt
        np.testing.assert_array_equal(rebuilt.to_dense(), block.to_dense())


@needs_shm
class TestZeroCopyGuard:
    """The shm hot path: zero pickle calls, zero CSR-data-buffer copies."""

    def _ring_pair(self):
        req = ShmRing.create(1 << 20)
        resp = ShmRing.create(1 << 20)
        a, b = socket.socketpair()
        client = ShmConnection(Connection(a), out_ring=req, in_ring=resp)
        server = ShmConnection(Connection(b), out_ring=resp, in_ring=req)
        return req, resp, client, server

    def test_query_batch_hot_path(self, small_vectors, monkeypatch):
        req, resp, client, server = self._ring_pair()

        def boom(*a, **k):  # any pickling on the hot path is a regression
            raise AssertionError("pickle used on the shm hot path")

        try:
            queries = small_vectors.slice_rows(0, 64)
            monkeypatch.setattr(pickle, "dumps", boom)
            monkeypatch.setattr(pickle, "dump", boom)
            monkeypatch.setattr(pickle, "Pickler", boom)
            sent = client.send_message(
                protocol.OP_QUERY_BATCH,
                {"n_cols": queries.n_cols},
                protocol.csr_to_arrays(queries, compact=True),
            )
            code, meta, arrays = server.recv_message(copy=False)
            assert code == protocol.OP_QUERY_BATCH
            assert "_shm_arrays" not in meta  # descriptors are consumed
            indptr, indices, data = arrays
            # Zero-copy receive: the buffers ARE ring memory, not copies.
            whole_ring = req.read_arrays(
                [[protocol._DTYPE_CODES[np.dtype(np.uint8)], [req.size], 0]],
                copy=False,
            )[0]
            assert np.shares_memory(data, whole_ring)
            assert np.shares_memory(indices, whole_ring)
            # Rebuilding the CSR keeps the data buffer itself (same-dtype
            # contiguous arrays pass through np.ascontiguousarray).
            rebuilt = protocol.arrays_to_csr(
                indptr, indices, data, queries.n_cols
            )
            assert rebuilt.data is data
            assert rebuilt.indices is indices
            np.testing.assert_array_equal(
                rebuilt.to_dense(), queries.to_dense()
            )
            # Stats: payload on the ring, only the control frame on TCP.
            payload = sum(a.nbytes for a in protocol.csr_to_arrays(queries, compact=True))
            assert client.stats.shm_bytes_sent == payload
            assert server.stats.shm_bytes_received == payload
            assert client.stats.bytes_sent == sent - payload
            assert client.stats.bytes_sent < 300
        finally:
            client.close()
            server.close()
            for ring in (req, resp):
                ring.close(unlink=True)

    def test_ring_names_are_auditable(self):
        ring = ShmRing.create(4096)
        try:
            assert ring.name.startswith(SHM_NAME_PREFIX)
            assert ring.name in leaked_segments()
        finally:
            ring.close(unlink=True)
        assert ring.name not in leaked_segments()


class TestModelCalibration:
    @needs_shm
    def test_modeled_bytes_within_2x_of_measured(self, small_vectors, queries):
        """The calibrated NetworkModel charges (framing + compact dtypes)
        must land within 2x of real measured bytes for a batch-isolated
        broadcast — the fig9 modeled-vs-measured comparison contract."""
        with spawn_local_cluster(
            N_NODES, CAPACITY, small_vectors.n_cols, PARAMS, insert_window=2
        ) as rpc:
            _fill(rpc, small_vectors, 1500)
            rpc.coordinator.reset_transport_stats()
            rpc.network.stats.reset()
            rpc.query_batch(queries)
            measured = rpc.coordinator.transport_totals()["total_bytes"]
            modeled = rpc.network.stats.bytes_sent
            assert measured > 0 and modeled > 0
            ratio = measured / modeled
            assert 0.5 <= ratio <= 2.0, (
                f"modeled {modeled} vs measured {measured} bytes "
                f"(ratio {ratio:.2f})"
            )

    def test_reset_transport_stats(self, small_vectors, queries):
        with spawn_local_cluster(
            N_NODES, CAPACITY, small_vectors.n_cols, PARAMS, insert_window=2
        ) as rpc:
            _fill(rpc, small_vectors, 1000)
            assert rpc.coordinator.transport_totals()["total_bytes"] > 0
            rpc.coordinator.reset_transport_stats()
            totals = rpc.coordinator.transport_totals()
            assert totals["n_messages"] == 0
            assert totals["total_bytes"] == 0


class TestTransportStats:
    def test_add_folds_shm_fields(self):
        a = TransportStats(n_sent=1, bytes_sent=10, shm_bytes_sent=100)
        b = TransportStats(
            n_received=2, bytes_received=20, shm_bytes_received=200
        )
        a.add(b)
        assert a.n_sent == 1 and a.n_received == 2
        assert a.shm_bytes_sent == 100 and a.shm_bytes_received == 200
        a.reset()
        assert a.shm_bytes_sent == a.shm_bytes_received == 0
