"""Wall-clock timing helpers used by the index, benches and the perf model.

``StageTimes`` mirrors the paper's per-phase accounting (hashing, I1, I2, I3
for construction; Q1..Q4 for queries) so Figure 6 can compare model
predictions against measured per-stage times.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from typing import Iterator

__all__ = ["Timer", "StageTimes"]


class Timer:
    """Minimal context-manager stopwatch; ``elapsed`` in seconds."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._start is not None
        self.elapsed += time.perf_counter() - self._start
        self._start = None


class StageTimes:
    """Accumulates wall-clock seconds per named pipeline stage."""

    def __init__(self) -> None:
        self._times: dict[str, float] = defaultdict(float)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self._times[name] += time.perf_counter() - start

    def add(self, name: str, seconds: float) -> None:
        self._times[name] += seconds

    def __getitem__(self, name: str) -> float:
        return self._times[name]

    def __contains__(self, name: str) -> bool:
        return name in self._times

    @property
    def total(self) -> float:
        return sum(self._times.values())

    def as_dict(self) -> dict[str, float]:
        return dict(self._times)

    def reset(self) -> None:
        self._times.clear()

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v * 1e3:.2f}ms" for k, v in sorted(self._times.items()))
        return f"StageTimes({parts})"
