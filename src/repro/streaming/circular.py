"""The rejected streaming alternative: circular-queue buckets (Section 6).

The paper discusses (and rejects) the expiration scheme of Petrovic et
al. [28]: "use circular queues to store LSH buckets, overwriting elements
when buckets overflow.  In this scenario, there is no guarantee that the
same data item is deleted from all buckets; this can also affect accuracy
of results" — i.e. a point half-evicted from its buckets is found with
reduced probability, and its expiration time is undefined.

This module implements that scheme faithfully so the trade-off can be
measured (see ``benchmarks/bench_ablation_streaming.py``): constant-memory
fixed-size bins with overwrite-on-overflow, against PLSH's delta+retirement
design with well-defined semantics.
"""

from __future__ import annotations

import numpy as np

from repro.core.distance import angular_distance
from repro.core.hashing import AllPairsHasher
from repro.core.query import QueryResult
from repro.params import PLSHParams
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import row_dots_dense

__all__ = ["CircularBucketLSH"]


class CircularBucketLSH:
    """Streaming LSH with fixed-capacity circular buckets.

    Every bucket holds at most ``bucket_capacity`` entries; a new insert
    into a full bucket overwrites the oldest entry *of that bucket only*.
    Memory is bounded by ``L * 2^k * bucket_capacity`` occupied slots, but:

    * old points decay out of individual buckets rather than expiring at a
      well-defined time, and
    * a point still resident in only some of its L buckets is retrieved
      with reduced probability (the accuracy loss the paper calls out).
    """

    def __init__(
        self,
        dim: int,
        params: PLSHParams,
        *,
        bucket_capacity: int = 8,
        hasher: AllPairsHasher | None = None,
    ) -> None:
        if bucket_capacity <= 0:
            raise ValueError(
                f"bucket_capacity must be positive, got {bucket_capacity}"
            )
        self.dim = dim
        self.params = params
        self.bucket_capacity = bucket_capacity
        self.hasher = hasher if hasher is not None else AllPairsHasher(params, dim)
        #: per-table: key -> (list of ids, cursor) circular buffer
        self._bins: list[dict[int, tuple[list[int], int]]] = [
            {} for _ in range(params.n_tables)
        ]
        self._blocks: list[CSRMatrix] = []
        self._vectors_cache: CSRMatrix | None = None
        self._n_rows = 0
        self.n_overwrites = 0

    def __len__(self) -> int:
        return self._n_rows

    def vectors(self) -> CSRMatrix:
        if self._vectors_cache is None:
            if not self._blocks:
                self._vectors_cache = CSRMatrix.empty(self.dim)
            else:
                self._vectors_cache = CSRMatrix.vstack(self._blocks)
        return self._vectors_cache

    def insert_batch(self, vectors: CSRMatrix) -> np.ndarray:
        """Insert rows, overwriting the oldest entry of any full bucket."""
        if vectors.n_cols != self.dim:
            raise ValueError(
                f"batch has {vectors.n_cols} columns, expected {self.dim}"
            )
        n = vectors.n_rows
        if n == 0:
            return np.empty(0, dtype=np.int64)
        base = self._n_rows
        u = self.hasher.hash_functions(vectors)
        ids = np.arange(base, base + n, dtype=np.int64)
        for l in range(self.params.n_tables):
            keys = self.hasher.table_key(u, l).tolist()
            bins = self._bins[l]
            for local, key in enumerate(keys):
                slot = bins.get(key)
                if slot is None:
                    bins[key] = ([int(ids[local])], 0)
                else:
                    bucket, cursor = slot
                    if len(bucket) < self.bucket_capacity:
                        bucket.append(int(ids[local]))
                    else:
                        bucket[cursor] = int(ids[local])  # overwrite oldest
                        bins[key] = (bucket, (cursor + 1) % self.bucket_capacity)
                        self.n_overwrites += 1
        self._blocks.append(vectors)
        self._n_rows += n
        self._vectors_cache = None
        return ids

    def residency(self, item: int) -> float:
        """Fraction of this item's L buckets it still occupies.

        1.0 right after insertion; decays toward 0 as later inserts
        overwrite it bucket by bucket — the paper's "no guarantee that the
        same data item is deleted from all buckets", quantified.
        """
        present = 0
        vectors = self.vectors()
        row = vectors.slice_rows(item, item + 1)
        u = self.hasher.hash_functions(row)
        keys = self.hasher.table_keys_for_query(u[0])
        for l in range(self.params.n_tables):
            slot = self._bins[l].get(int(keys[l]))
            if slot is not None and item in slot[0]:
                present += 1
        return present / self.params.n_tables

    def query(
        self, q_cols: np.ndarray, q_vals: np.ndarray, *, radius: float | None = None
    ) -> QueryResult:
        """Standard Q1-Q4 over whatever survives in the circular buckets."""
        radius = self.params.radius if radius is None else radius
        q_cols = np.asarray(q_cols, dtype=np.int64)
        q_vals = np.asarray(q_vals, dtype=np.float32)
        q = CSRMatrix(
            np.asarray([0, q_cols.size], dtype=np.int64),
            q_cols.astype(np.int32),
            q_vals,
            self.dim,
            check=False,
        )
        u = self.hasher.hash_functions(q)[0]
        keys = self.hasher.table_keys_for_query(u)
        found: list[int] = []
        for l in range(self.params.n_tables):
            slot = self._bins[l].get(int(keys[l]))
            if slot is not None:
                found.extend(slot[0])
        if not found:
            return QueryResult(
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32)
            )
        unique = np.unique(np.asarray(found, dtype=np.int64))
        vectors = self.vectors()
        q_dense = np.zeros(self.dim, dtype=np.float32)
        q_dense[q_cols] = q_vals
        dots = row_dots_dense(vectors, unique, q_dense)
        dists = angular_distance(dots)
        within = dists <= radius
        return QueryResult(unique[within], dists[within])

    def query_batch(
        self, queries: CSRMatrix, *, radius: float | None = None
    ) -> list[QueryResult]:
        return [
            self.query(*queries.row(r), radius=radius)
            for r in range(queries.n_rows)
        ]
