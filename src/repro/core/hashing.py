"""All-pairs LSH hashing (Section 3, "All-pairs LSH hashing").

Instead of drawing ``L`` independent ``k``-bit functions (cost
``O(NNZ * k * L)`` per point), PLSH draws ``m ≈ sqrt(2L)`` functions
``u_1..u_m`` of ``k/2`` bits each and forms every table key as the
concatenation of a pair: ``g_{i,j}(v) = (u_i(v), u_j(v))`` for ``i < j``,
giving ``L = m(m-1)/2`` tables at hashing cost ``O(NNZ * k * m/2 + L)``.

This module turns sign bits from the hyperplane bank into packed ``u``
values and per-table keys.  ``u`` values are stored as one ``(n, m)``
uint16 array (``k/2 <= 16`` bits each); these are exactly the values the
two-level table construction partitions on, and they are cached by the
index so streaming merges never re-hash (Section 6.2).
"""

from __future__ import annotations

import numpy as np

from repro.params import PLSHParams
from repro.core.hyperplanes import HyperplaneBank
from repro.sparse.csr import CSRMatrix

__all__ = ["AllPairsHasher", "pack_bits", "pack_bits_reference"]


def pack_bits(bits: np.ndarray, bits_per_function: int) -> np.ndarray:
    """Pack ``(n, m * b)`` hash bits into ``(n, m)`` uint16 function values.

    Bit 0 of each group is the most significant, matching the paper's
    notation ``u_i = (h_1, ..., h_{k/2})``.
    """
    n, total = bits.shape
    if total % bits_per_function != 0:
        raise ValueError(
            f"{total} bit columns do not divide into groups of {bits_per_function}"
        )
    if bits_per_function > 16:
        raise ValueError(f"bits_per_function must be <= 16, got {bits_per_function}")
    m = total // bits_per_function
    weights = (
        1 << np.arange(bits_per_function - 1, -1, -1, dtype=np.uint32)
    ).astype(np.uint32)
    grouped = bits.reshape(n, m, bits_per_function).astype(np.uint32)
    return (grouped * weights).sum(axis=2).astype(np.uint16)


def pack_bits_reference(bits: np.ndarray, bits_per_function: int) -> np.ndarray:
    """Pure-Python bit packing (ground truth for property tests)."""
    n, total = bits.shape
    m = total // bits_per_function
    out = np.zeros((n, m), dtype=np.uint16)
    for row in range(n):
        for func in range(m):
            value = 0
            for b in range(bits_per_function):
                value = (value << 1) | int(bits[row, func * bits_per_function + b])
            out[row, func] = value
    return out


class AllPairsHasher:
    """Computes ``u`` function values and per-table keys for PLSH.

    Construction draws the full hyperplane bank from ``params.seed``; two
    hashers with equal ``(params, dim)`` produce identical hashes, which the
    distributed design relies on (every node must agree on the functions so
    a broadcast query hashes identically everywhere).
    """

    def __init__(self, params: PLSHParams, dim: int) -> None:
        self.params = params
        self.dim = dim
        self.bank = HyperplaneBank(dim, params.n_hash_bits, seed=params.seed)
        #: The L (i, j) pairs, row-major; table l uses functions pairs[l].
        self.pairs = params.table_pairs()
        self._pair_index = {pair: l for l, pair in enumerate(self.pairs)}
        # First/second function index per table, shared by the single-query
        # and batch key expansions (tiny and always needed).
        pairs_arr = np.asarray(self.pairs, dtype=np.int64).reshape(-1, 2)
        self._pair_i = np.ascontiguousarray(pairs_arr[:, 0])
        self._pair_j = np.ascontiguousarray(pairs_arr[:, 1])

    @property
    def n_tables(self) -> int:
        return self.params.n_tables

    def hash_functions(self, vectors: CSRMatrix, *, vectorized: bool = True) -> np.ndarray:
        """Evaluate ``u_1..u_m`` for every row → ``(n, m)`` uint16."""
        bits = self.bank.sign_bits(vectors, vectorized=vectorized)
        return pack_bits(bits, self.params.bits_per_function)

    def table_key(self, u_values: np.ndarray, table: int) -> np.ndarray:
        """``g_l`` keys for one table from cached ``u`` values → uint32."""
        i, j = self.pairs[table]
        b = self.params.bits_per_function
        return (u_values[:, i].astype(np.uint32) << b) | u_values[:, j].astype(
            np.uint32
        )

    def table_keys_for_query(self, u_row: np.ndarray) -> np.ndarray:
        """All ``L`` table keys of a single hashed query → ``(L,)`` uint32.

        Vectorized pair expansion: for the row-major pair order the first
        and second function index arrays are precomputed in ``__init__``.
        """
        b = self.params.bits_per_function
        u = u_row.astype(np.uint32)
        return (u[self._pair_i] << b) | u[self._pair_j]

    def table_keys_batch(self, u_values: np.ndarray) -> np.ndarray:
        """Table keys for a whole hashed batch: ``(n, m)`` → ``(n, L)`` uint32.

        One fancy gather per pair array — Step Q1 of the vectorized batch
        kernel expands every query's L keys in two numpy calls total.
        """
        if u_values.ndim != 2:
            raise ValueError(f"u_values must be 2-D, got shape {u_values.shape}")
        b = self.params.bits_per_function
        u = u_values.astype(np.uint32)
        return (u[:, self._pair_i] << b) | u[:, self._pair_j]

    def table_index(self, i: int, j: int) -> int:
        """Table number for function pair ``(i, j)``, ``i < j``."""
        return self._pair_index[(i, j)]
