"""Streaming PLSH (Section 6): partitions, delta tables, merge, deletion.

The static tier is an ordered list of **time-ranged partitions**
(:class:`PartitionedStatic`), each owning its local tables and id range.
New data is buffered in an insert-optimized **delta table**; queries
consult every partition and the delta structures and combine answers.
When the delta reaches a fraction ``eta`` of node capacity it is merged
into the *newest partition only* (a partition-bound rebuild over cached
hash codes).  The merge is split into a prepare phase
(:func:`prepare_merge`, runnable on a background thread while queries
keep serving ``partitions + frozen delta + fresh delta``) and a short
commit swap — see :class:`StreamingPLSH` for the non-blocking lifecycle.
Deletions are a bitvector consulted before the distance computation.

The partition lifecycle is roll → merge-into-newest → drop:
``roll_partition`` seals the newest partition, ``retire_before(ts)``
drops wholly-cold partitions in O(1) (no rebuild; their id ranges become
holes) and tombstones the ragged edge, and ``retire_window`` drops all
partitions for the cluster's window advance — no node teardown.  The
node enforces a hard capacity; retirement is driven by the cluster layer.
"""

from repro.streaming.delta import DeltaTable
from repro.streaming.deletion import DeletionFilter
from repro.streaming.merge import PreparedMerge, merge_into_static, prepare_merge
from repro.streaming.node import StreamingPLSH
from repro.streaming.partitions import PartitionedStatic, StaticPartition

__all__ = [
    "DeletionFilter",
    "DeltaTable",
    "PartitionedStatic",
    "PreparedMerge",
    "StaticPartition",
    "StreamingPLSH",
    "merge_into_static",
    "prepare_merge",
]
