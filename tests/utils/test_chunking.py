"""Chunk iterator tests."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.chunking import chunk_bounds, iter_chunks


def test_chunk_bounds_exact_division():
    assert list(chunk_bounds(10, 5)) == [(0, 5), (5, 10)]


def test_chunk_bounds_remainder():
    assert list(chunk_bounds(7, 3)) == [(0, 3), (3, 6), (6, 7)]


def test_chunk_bounds_empty():
    assert list(chunk_bounds(0, 4)) == []


def test_chunk_bounds_rejects_nonpositive():
    with pytest.raises(ValueError):
        list(chunk_bounds(5, 0))


def test_iter_chunks_covers_sequence():
    assert list(iter_chunks([1, 2, 3, 4, 5], 2)) == [[1, 2], [3, 4], [5]]


def test_iter_chunks_rejects_nonpositive():
    with pytest.raises(ValueError):
        list(iter_chunks([1], -1))


@given(n=st.integers(0, 500), size=st.integers(1, 50))
def test_chunk_bounds_partition_property(n, size):
    """Chunks must tile [0, n) exactly, in order, each ≤ size."""
    bounds = list(chunk_bounds(n, size))
    pos = 0
    for start, stop in bounds:
        assert start == pos
        assert 0 < stop - start <= size
        pos = stop
    assert pos == n
