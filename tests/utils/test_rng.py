"""Seeded RNG stream tests: determinism and purpose isolation."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import rng_for, spawn_rngs


def test_same_seed_same_stream():
    a = rng_for(7, "hyperplanes").standard_normal(16)
    b = rng_for(7, "hyperplanes").standard_normal(16)
    np.testing.assert_array_equal(a, b)


def test_different_purposes_are_independent():
    a = rng_for(7, "hyperplanes").standard_normal(16)
    b = rng_for(7, "corpus").standard_normal(16)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = rng_for(7, "corpus").standard_normal(16)
    b = rng_for(8, "corpus").standard_normal(16)
    assert not np.array_equal(a, b)


def test_none_seed_is_nondeterministic():
    a = rng_for(None, "x").standard_normal(16)
    b = rng_for(None, "x").standard_normal(16)
    assert not np.array_equal(a, b)


def test_spawn_rngs_are_mutually_independent():
    rngs = spawn_rngs(7, "workers", 4)
    draws = [g.standard_normal(8) for g in rngs]
    for i in range(4):
        for j in range(i + 1, 4):
            assert not np.array_equal(draws[i], draws[j])


def test_spawn_rngs_reproducible():
    a = [g.standard_normal(4) for g in spawn_rngs(3, "w", 3)]
    b = [g.standard_normal(4) for g in spawn_rngs(3, "w", 3)]
    for x, y in zip(a, b):
        np.testing.assert_array_equal(x, y)
