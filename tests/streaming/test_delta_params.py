"""Delta tables with parameters different from the static structure.

Section 6.1: "We retain the same parameter values (k, L) as for the static
LSH data structures (although it is technically possible to have different
values)."  The delta implementation indeed supports independent parameters;
these tests pin that capability so the extension stays usable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import AllPairsHasher
from repro.params import PLSHParams
from repro.streaming.delta import DeltaTable


@pytest.fixture(scope="module")
def smaller_delta(small_vectors):
    """A delta with a cheaper configuration than the static default."""
    params = PLSHParams(k=6, m=4, radius=0.9, seed=151)
    hasher = AllPairsHasher(params, small_vectors.n_cols)
    delta = DeltaTable(small_vectors.n_cols, params, hasher)
    delta.insert_batch(small_vectors.slice_rows(0, 200))
    return delta, params, hasher


def test_independent_parameters_work(smaller_delta, small_vectors):
    delta, params, hasher = smaller_delta
    assert len(delta) == 200
    assert len(delta._bins) == params.n_tables == 6
    # Self-collision: a member must appear in its own buckets.
    q = small_vectors.slice_rows(10, 11)
    u = hasher.hash_functions(q)[0]
    keys = hasher.table_keys_for_query(u)
    assert 10 in delta.collisions(keys).tolist()


def test_cheaper_delta_fewer_bins_touched(small_vectors):
    """Fewer tables mean proportionally less per-insert bin work — the
    knob a deployment could use to make inserts cheaper at recall cost."""
    cheap_params = PLSHParams(k=6, m=4, seed=152)
    rich_params = PLSHParams(k=6, m=12, seed=152)
    cheap = DeltaTable(
        small_vectors.n_cols, cheap_params,
        AllPairsHasher(cheap_params, small_vectors.n_cols),
    )
    rich = DeltaTable(
        small_vectors.n_cols, rich_params,
        AllPairsHasher(rich_params, small_vectors.n_cols),
    )
    batch = small_vectors.slice_rows(0, 100)
    cheap.insert_batch(batch)
    rich.insert_batch(batch)
    assert sum(cheap.bucket_sizes().values()) < sum(
        rich.bucket_sizes().values()
    )
