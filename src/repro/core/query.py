"""The PLSH query pipeline, Steps Q1-Q4 (Section 5.2).

Q1  hash the query with all m k/2-bit functions and form the L table keys;
Q2  gather bucket contents from every table and deduplicate;
Q3  compute the true distance to each unique candidate;
Q4  emit candidates within radius R.

The engine exposes every optimization as a switch so the Figure 5 ablation
can walk the paper's rungs:

====================  =======================================================
engine option          paper optimization
====================  =======================================================
``dedup``              Q2 bitvector vs sort vs set (Section 5.2.1)
``dots``               Q3 dense-lookup sparse dot product (Section 5.2.3)
``batched_gather``     Q3 software prefetching analogue (Section 5.2.2)
``reuse_buffers``      large-pages analogue: persistent dense query buffer
                       and dedup mask instead of per-query allocations
====================  =======================================================

Batch queries have two execution modes (``QueryEngine.query_batch``):

* ``mode="vectorized"`` — the production batch kernel and the default for
  ``workers == 1``.  Steps Q1-Q4 run over the *whole* ``(B, dim)`` query
  block in a constant number of numpy calls: one CSR x hyperplane-bank
  pass and a two-gather pair expansion (Q1), one flat gather of all
  ``B x L`` buckets plus one segmented dedup (Q2), one blocked
  gather/segment-reduce over the CSR data (Q3), and one vectorized radius
  filter (Q4).  Per-query work is pure slicing, so batch throughput is
  bounded by memory bandwidth instead of interpreter dispatch — the same
  "restructure for the memory system" move as the paper's software
  prefetching and contiguous tables (Section 5.2.2).
* ``mode="pipelined"`` — the cache-blocked pipelined kernel
  (:mod:`repro.core.pipelined`): the same Q1-Q4 structure, but each block's
  bucket gather runs as a per-table pipeline with compact (int32) fused
  dedup keys and the dot stage uses compact gather indexes.  Bit-identical
  to ``"vectorized"`` (which stays the oracle) and faster in the
  memory-bound large-shard regime (~100k docs); optional numba
  acceleration when importable.
* ``mode="loop"`` — the per-query pipeline, kept as the ablation baseline.
  Vectorized beats loop whenever queries are cheap relative to numpy
  dispatch overhead (tweet-scale corpora, batch sizes ≳ tens of queries);
  the loop only wins when individual queries are so kernel-heavy that
  dispatch is noise.

Both modes compose with ``workers > 1`` through the
:mod:`repro.parallel` execution layer (Section 5.2 "Parallelism",
Figure 8): the batch is hashed *once* in the parent (Q1), split into one
contiguous sub-block per worker, and each worker runs the chosen kernel
on its shard — results are bit-identical to ``workers == 1`` because every
query's answer depends only on its own key row.  Backends:

* ``backend="fork_pool"`` (production default on Linux) — a *persistent*
  pool of fork()ed workers sharing the tables copy-on-write.  The pool is
  forked once per engine, stays warm across batches, and is owned by the
  engine: release it with :meth:`QueryEngine.close` or use the engine as
  a context manager.
* ``backend="thread"`` — a persistent thread pool; the automatic fallback
  on platforms without ``fork``.  Scales only where the shard kernels
  release the GIL (large vectorized shards), and documents the negative
  result for the per-query loop (EXPERIMENTS.md).

``workers=None`` defers to ``PLSH_WORKERS`` in the environment
(:func:`repro.parallel.default_workers`), which is how CI runs the whole
suite through the fork pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.candidates import make_deduplicator, mask_segments, unique_segments
from repro.core.distance import (
    angular_distance,
    candidate_dots_batched,
    candidate_dots_lookup,
    candidate_dots_naive,
    candidate_dots_segmented,
)
from repro.core.hashing import AllPairsHasher
from repro.core.pipelined import PIPELINED_QUERY_BLOCK, PipelinedKernel
from repro.core.tables import StaticTableSet
from repro.parallel import (
    ExecutorCache,
    default_workers,
    resolve_backend,
    shard_bounds,
)
from repro.params import PLSHParams
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import densify_query
from repro.utils.timing import StageTimes

__all__ = ["QueryEngine", "QueryResult", "QueryStats"]


@dataclass
class QueryResult:
    """R-near neighbors of one query: parallel id/distance arrays."""

    indices: np.ndarray
    distances: np.ndarray

    def __len__(self) -> int:
        return int(self.indices.size)

    def sorted_by_distance(self) -> "QueryResult":
        order = np.argsort(self.distances, kind="stable")
        return QueryResult(self.indices[order], self.distances[order])

    def top(self, n: int) -> "QueryResult":
        s = self.sorted_by_distance()
        return QueryResult(s.indices[:n], s.distances[:n])


@dataclass
class QueryStats:
    """Aggregate counters across queries (drives the performance model)."""

    n_queries: int = 0
    n_collisions: int = 0
    n_unique: int = 0
    n_matches: int = 0
    stage_times: StageTimes = field(default_factory=StageTimes)

    def mean_collisions(self) -> float:
        return self.n_collisions / max(self.n_queries, 1)

    def mean_unique(self) -> float:
        return self.n_unique / max(self.n_queries, 1)

    def mean_matches(self) -> float:
        return self.n_matches / max(self.n_queries, 1)


class QueryEngine:
    """Executes Q1-Q4 against a static table set."""

    def __init__(
        self,
        tables: StaticTableSet,
        data: CSRMatrix,
        hasher: AllPairsHasher,
        params: PLSHParams,
        *,
        dedup: str = "bitvector",
        dots: str = "batched",
        reuse_buffers: bool = True,
    ) -> None:
        if tables.n_items != data.n_rows:
            raise ValueError(
                f"tables index {tables.n_items} items but data has "
                f"{data.n_rows} rows"
            )
        if dots not in ("naive", "lookup", "batched"):
            raise ValueError(f"unknown dots strategy {dots!r}")
        self.tables = tables
        self.data = data
        self.hasher = hasher
        self.params = params
        self.dedup_strategy = dedup
        self.dots_strategy = dots
        self.reuse_buffers = reuse_buffers
        # The batch kernel has its own fixed strategies (segmented sort
        # dedup, blocked batched dots); only an engine in the production
        # configuration may default to it, so ablation engines keep
        # measuring the rung they were built with.
        self._production_config = (
            dedup == "bitvector" and dots == "batched" and reuse_buffers
        )
        self.stats = QueryStats()
        self._dedup = make_deduplicator(dedup, tables.n_items)
        #: lazily-built pipelined kernel state (compact-index caches plus
        #: the reusable dense plane); one per engine clone, never shared.
        self._pipelined: PipelinedKernel | None = None
        self._q_dense: np.ndarray | None = (
            np.zeros(data.n_cols, dtype=np.float32) if reuse_buffers else None
        )
        #: persistent executors keyed by (canonical backend, workers); the
        #: fork pool in particular forks once per engine and stays warm
        #: across batches — release with close() / context manager.
        self._executors = ExecutorCache(self)

    # -- executor lifecycle --------------------------------------------------

    def executor(self, workers: int, backend: str | None = None):
        """The engine's persistent :class:`repro.parallel.Executor` for the
        given parallelism degree, created lazily and cached.

        The engine's tables/data/hasher are immutable after construction,
        so a fork pool's copy-on-write snapshot never goes stale and the
        same pool serves every subsequent batch.
        """
        return self._executors.get(workers, backend)

    def close(self) -> None:
        """Release every pooled executor (idempotent).  Engines used only
        with ``workers == 1`` hold no pool and need no close."""
        self._executors.close()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- single query -------------------------------------------------------

    def query(
        self,
        q_cols: np.ndarray,
        q_vals: np.ndarray,
        *,
        radius: float | None = None,
        exclude: np.ndarray | None = None,
        keys: np.ndarray | None = None,
    ) -> QueryResult:
        """R-near neighbors of a sparse unit query vector.

        ``exclude`` is an optional boolean mask over data indexes (True =
        drop); the streaming node passes its deletion filter here, applied
        before the distance computation as in Section 6.2.  ``keys`` may
        carry the precomputed L table keys of the query (the streaming node
        hashes each query once and shares the keys between the static and
        delta structures).
        """
        radius = self.params.radius if radius is None else radius
        q_cols = np.asarray(q_cols, dtype=np.int64)
        q_vals = np.asarray(q_vals, dtype=np.float32)
        st = self.stats.stage_times

        with st.stage("q1_hash"):
            if keys is None:
                keys = self._hash_query(q_cols, q_vals)
        with st.stage("q2_dedup"):
            collisions = self.tables.collisions(keys)
            unique = self._dedup.unique(collisions)
            if exclude is not None and unique.size:
                unique = unique[~exclude[unique]]
        with st.stage("q3_distance"):
            dots = self._candidate_dots(unique, q_cols, q_vals)
        with st.stage("q4_filter"):
            dists = angular_distance(dots)
            within = dists <= radius
            result = QueryResult(unique[within], dists[within])

        self.stats.n_queries += 1
        self.stats.n_collisions += int(collisions.size)
        self.stats.n_unique += int(unique.size)
        self.stats.n_matches += len(result)
        return result

    def query_row(self, queries: CSRMatrix, row: int, **kw) -> QueryResult:
        cols, vals = queries.row(row)
        return self.query(cols, vals, **kw)

    # -- batch queries --------------------------------------------------------

    def query_batch(
        self,
        queries: CSRMatrix,
        *,
        radius: float | None = None,
        workers: int | None = None,
        exclude: np.ndarray | None = None,
        backend: str | None = None,
        mode: str | None = None,
        keys: np.ndarray | None = None,
    ) -> list[QueryResult]:
        """Process a query batch.

        ``mode`` selects the kernel each worker runs on its shard:

        * ``"vectorized"`` (default on a production-configured engine) —
          the batch kernel: Q1-Q4 over the whole shard in a constant
          number of numpy calls (see the module docstring).  An engine
          built with non-default ``dedup``/``dots``/``reuse_buffers`` (an
          ablation rung) defaults to ``"loop"`` instead — pass
          ``mode="vectorized"`` explicitly to override.
        * ``"pipelined"`` — the cache-blocked pipelined kernel
          (:mod:`repro.core.pipelined`), bit-identical to ``"vectorized"``
          and faster on memory-bound large shards.
        * ``"loop"`` — the per-query pipeline, kept for ablation.

        ``workers`` shards the batch over the :mod:`repro.parallel`
        executor layer: the batch is hashed once here (Q1), split into one
        contiguous sub-block per worker, and every worker runs the kernel
        on its shard with a private engine clone (private dedup masks and
        buffers — the per-thread bitvectors of Section 5.2.1).  Results
        are **bit-identical** to ``workers=1`` in either mode.  ``None``
        defers to ``PLSH_WORKERS`` (default 1).

        ``backend`` is ``"fork_pool"`` (persistent fork()ed pool sharing
        the tables copy-on-write; Linux production default), ``"thread"``
        (persistent thread pool; fallback where ``fork`` is missing), or
        ``"serial"``.  ``None`` picks the platform default.  Pools are
        created on first use and kept warm on the engine — see
        :meth:`executor` / :meth:`close`.

        ``keys`` may carry the precomputed ``(B, L)`` table-key matrix of
        the batch (the streaming node hashes each batch once and shares the
        keys between the static and delta structures).
        """
        n = queries.n_rows
        if workers is None:
            workers = default_workers()
        if keys is not None:
            keys = np.asarray(keys)
            if keys.shape != (n, self.tables.n_tables):
                raise ValueError(
                    f"keys shape {keys.shape} != "
                    f"{(n, self.tables.n_tables)}"
                )
        if mode is None:
            mode = "vectorized" if self._production_config else "loop"
        if mode not in ("vectorized", "pipelined", "loop"):
            raise ValueError(
                f"unknown mode {mode!r}; expected 'vectorized', "
                f"'pipelined' or 'loop'"
            )
        if backend is not None:
            resolve_backend(backend)  # validate eagerly, even when serial
        if workers <= 1 or n == 0:
            if mode == "pipelined":
                return self._query_batch_pipelined(
                    queries, radius, exclude, keys
                )
            if mode == "vectorized":
                return self._query_batch_vectorized(
                    queries, radius, exclude, keys
                )
            return [
                self.query_row(
                    queries, r, radius=radius, exclude=exclude,
                    keys=None if keys is None else keys[r],
                )
                for r in range(n)
            ]
        return self._query_batch_sharded(
            queries, radius, workers, exclude, backend, mode, keys
        )

    def _query_batch_sharded(
        self,
        queries: CSRMatrix,
        radius: float | None,
        workers: int,
        exclude: np.ndarray | None,
        backend: str | None,
        mode: str,
        keys: np.ndarray | None,
    ) -> list[QueryResult]:
        """Shard a batch over the parallel execution layer.

        Q1 runs once here; each worker gets a contiguous ``(B/W, dim)``
        sub-block plus its slice of the key matrix and runs the kernel on
        it.  ``B < workers`` simply produces empty shards (a worker
        answering an empty shard returns an empty list), so tiny batches
        stay correct.  Workers return plain arrays plus their counters and
        per-stage wall-clock, which are merged into :attr:`stats` exactly
        like the serial path would have recorded them.
        """
        n = queries.n_rows
        st = self.stats.stage_times
        with st.stage("q1_hash"):
            if keys is None:
                u = self.hasher.hash_functions(queries)
                keys = self.hasher.table_keys_batch(u)
        bounds = shard_bounds(n, workers)
        tasks = [
            (
                queries.slice_rows(int(b0), int(b1)),
                keys[b0:b1],
                radius,
                exclude,
                mode,
            )
            for b0, b1 in zip(bounds[:-1], bounds[1:])
        ]
        ex = self.executor(workers, backend)
        parts = ex.run(_shard_worker, tasks)
        results: list[QueryResult] = []
        for payload, (coll, uniq, match), stage_secs in parts:
            results.extend(
                QueryResult(indices, distances)
                for indices, distances in payload
            )
            self.stats.n_collisions += coll
            self.stats.n_unique += uniq
            self.stats.n_matches += match
            # Merge the workers' per-stage wall-clock so Figure 5
            # breakdowns under parallel backends report real numbers.
            for name, secs in stage_secs.items():
                self.stats.stage_times.add(name, secs)
        self.stats.n_queries += n
        return results

    #: Queries per internal block of the vectorized kernel.  Large enough to
    #: amortize dispatch to nothing, small enough that the flat collision /
    #: candidate temporaries stay cache-resident — past ~500 queries per
    #: block the segmented arrays spill and per-query cost creeps back up.
    VECTORIZED_QUERY_BLOCK = 256

    def _query_batch_vectorized(
        self,
        queries: CSRMatrix,
        radius: float | None,
        exclude: np.ndarray | None,
        keys: np.ndarray | None,
    ) -> list[QueryResult]:
        """The batch kernel: Q1-Q4 over whole query blocks, O(1) numpy calls
        per :data:`VECTORIZED_QUERY_BLOCK` queries.

        The whole batch is hashed in one pass (Q1); Q2-Q4 then run over
        internal blocks so the flat segmented temporaries stay in cache.
        Per-query python work is limited to slicing out the result objects;
        every numerical step runs once per block over flat segmented
        arrays.  Results are bit-identical to the per-query loop (same
        float32 operands, float64 accumulation in the same order).
        """
        radius = self.params.radius if radius is None else radius
        n = queries.n_rows
        if n == 0:
            return []
        st = self.stats.stage_times

        with st.stage("q1_hash"):
            if keys is None:
                u = self.hasher.hash_functions(queries)
                keys = self.hasher.table_keys_batch(u)

        results: list[QueryResult] = []
        block = self.VECTORIZED_QUERY_BLOCK
        for b0 in range(0, n, block):
            b1 = min(b0 + block, n)
            q_block = queries.slice_rows(b0, b1)
            with st.stage("q2_dedup"):
                values, raw_offsets = self.tables.collisions_batch(keys[b0:b1])
                cand, offsets = unique_segments(
                    values, raw_offsets, self.tables.n_items
                )
                if exclude is not None and cand.size:
                    keep = ~exclude[cand]
                    offsets = mask_segments(offsets, keep)
                    cand = cand[keep]
            with st.stage("q3_distance"):
                dots = candidate_dots_segmented(
                    self.data, cand, offsets, q_block
                )
            with st.stage("q4_filter"):
                dists = angular_distance(dots)
                within = dists <= radius
                out_offsets = mask_segments(offsets, within)
                out_ids = cand[within]
                out_dists = dists[within]
                results.extend(
                    QueryResult(
                        out_ids[out_offsets[b] : out_offsets[b + 1]],
                        out_dists[out_offsets[b] : out_offsets[b + 1]],
                    )
                    for b in range(b1 - b0)
                )
            self.stats.n_collisions += int(values.size)
            self.stats.n_unique += int(cand.size)
            self.stats.n_matches += int(out_ids.size)
        self.stats.n_queries += n
        return results

    def _query_batch_pipelined(
        self,
        queries: CSRMatrix,
        radius: float | None,
        exclude: np.ndarray | None,
        keys: np.ndarray | None,
    ) -> list[QueryResult]:
        """The cache-blocked pipelined kernel (:mod:`repro.core.pipelined`).

        Same Q1-Q4 structure and counters as the vectorized kernel and
        bit-identical to it; each block's bucket gather runs as a per-table
        pipeline with compact fused sort keys and the dot stage uses
        compact gather indexes (see the kernel module docstring for the
        measured wins).  The vectorized kernel stays the oracle.
        """
        radius = self.params.radius if radius is None else radius
        n = queries.n_rows
        if n == 0:
            return []
        st = self.stats.stage_times

        with st.stage("q1_hash"):
            if keys is None:
                u = self.hasher.hash_functions(queries)
                keys = self.hasher.table_keys_batch(u)

        if self._pipelined is None:
            self._pipelined = PipelinedKernel(self.tables, self.data)
        kernel = self._pipelined
        results: list[QueryResult] = []
        block = PIPELINED_QUERY_BLOCK
        for b0 in range(0, n, block):
            b1 = min(b0 + block, n)
            q_block = queries.slice_rows(b0, b1)
            with st.stage("q2_dedup"):
                cand, offsets, n_coll = kernel.block_candidates(keys[b0:b1])
                if exclude is not None and cand.size:
                    keep = ~exclude[cand]
                    offsets = mask_segments(offsets, keep)
                    cand = cand[keep]
            with st.stage("q3_distance"):
                dots = kernel.block_dots(cand, offsets, q_block)
            with st.stage("q4_filter"):
                dists = angular_distance(dots)
                within = dists <= radius
                out_offsets = mask_segments(offsets, within)
                out_ids = cand[within]
                out_dists = dists[within]
                results.extend(
                    QueryResult(
                        out_ids[out_offsets[b] : out_offsets[b + 1]],
                        out_dists[out_offsets[b] : out_offsets[b + 1]],
                    )
                    for b in range(b1 - b0)
                )
            self.stats.n_collisions += n_coll
            self.stats.n_unique += int(cand.size)
            self.stats.n_matches += int(out_ids.size)
        self.stats.n_queries += n
        return results

    # -- internals ---------------------------------------------------------

    def _hash_query(self, q_cols: np.ndarray, q_vals: np.ndarray) -> np.ndarray:
        """Step Q1: u values then the L table keys for one query."""
        q = CSRMatrix(
            np.asarray([0, q_cols.size], dtype=np.int64),
            q_cols.astype(np.int32),
            q_vals,
            self.data.n_cols,
            check=False,
        )
        u = self.hasher.hash_functions(q)[0]
        return self.hasher.table_keys_for_query(u)

    def _candidate_dots(
        self, unique: np.ndarray, q_cols: np.ndarray, q_vals: np.ndarray
    ) -> np.ndarray:
        if unique.size == 0:
            return np.empty(0, dtype=np.float32)
        if self.dots_strategy == "naive":
            return candidate_dots_naive(self.data, unique, q_cols, q_vals)
        if self.dots_strategy == "lookup":
            return candidate_dots_lookup(self.data, unique, q_cols, q_vals)
        q_dense = self._densify(q_cols, q_vals)
        try:
            return candidate_dots_batched(self.data, unique, q_dense)
        finally:
            if self._q_dense is not None:
                # Reset only the touched positions of the persistent buffer.
                self._q_dense[q_cols] = 0.0

    def _densify(self, q_cols: np.ndarray, q_vals: np.ndarray) -> np.ndarray:
        if self._q_dense is not None:
            self._q_dense[q_cols] = q_vals
            return self._q_dense
        return densify_query(q_cols, q_vals, self.data.n_cols)

    def _clone(self) -> "QueryEngine":
        return QueryEngine(
            self.tables,
            self.data,
            self.hasher,
            self.params,
            dedup=self.dedup_strategy,
            dots=self.dots_strategy,
            reuse_buffers=self.reuse_buffers,
        )

    def _absorb_stats(self, other: "QueryEngine") -> None:
        self.stats.n_queries += other.stats.n_queries
        self.stats.n_collisions += other.stats.n_collisions
        self.stats.n_unique += other.stats.n_unique
        self.stats.n_matches += other.stats.n_matches
        for name, secs in other.stats.stage_times.as_dict().items():
            self.stats.stage_times.add(name, secs)


def _shard_worker(
    engine: QueryEngine,
    queries: CSRMatrix,
    keys: np.ndarray,
    radius: float | None,
    exclude: np.ndarray | None,
    mode: str,
):
    """Executor task: answer one shard of a batch against ``engine``.

    ``engine`` is the executor state — the live object for in-process
    backends, the fork()ed copy-on-write snapshot for the fork pool.  A
    clone gives the call private dedup masks/buffers/stats (cheap: it
    shares tables and data), so concurrent shards never interfere and a
    warm pool stays re-entrant across batches.  The return payload is
    plain arrays plus counters and per-stage seconds — primitives keep
    pickling cheap on the way back through the pool's pipes.
    """
    eng = engine._clone()
    if mode == "vectorized":
        res = eng._query_batch_vectorized(queries, radius, exclude, keys)
    elif mode == "pipelined":
        res = eng._query_batch_pipelined(queries, radius, exclude, keys)
    else:
        res = [
            eng.query_row(
                queries, r, radius=radius, exclude=exclude, keys=keys[r]
            )
            for r in range(queries.n_rows)
        ]
    stats = eng.stats
    return (
        [(r.indices, r.distances) for r in res],
        (stats.n_collisions, stats.n_unique, stats.n_matches),
        stats.stage_times.as_dict(),
    )
