"""Sparse kernel tests: vectorized kernels vs references vs scipy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import (
    densify_query,
    row_dots_dense,
    row_dots_dense_reference,
    sparse_dense_matmul,
    sparse_dense_matmul_reference,
)


def random_csr(rng, n_rows=12, n_cols=30, density=0.25):
    dense = (rng.random((n_rows, n_cols)) < density) * rng.standard_normal(
        (n_rows, n_cols)
    )
    return CSRMatrix.from_dense(dense.astype(np.float32)), dense.astype(np.float32)


class TestMatmul:
    def test_matches_dense_matmul(self, rng):
        m, dense = random_csr(rng)
        planes = rng.standard_normal((30, 7)).astype(np.float32)
        np.testing.assert_allclose(
            sparse_dense_matmul(m, planes), dense @ planes, rtol=1e-4, atol=1e-5
        )

    def test_matches_reference(self, rng):
        m, _ = random_csr(rng)
        planes = rng.standard_normal((30, 5)).astype(np.float32)
        np.testing.assert_allclose(
            sparse_dense_matmul(m, planes),
            sparse_dense_matmul_reference(m, planes),
            rtol=1e-4,
            atol=1e-5,
        )

    def test_handles_empty_rows(self):
        m = CSRMatrix.from_rows([([], []), ([1], [2.0]), ([], [])], 4)
        planes = np.ones((4, 3), dtype=np.float32)
        out = sparse_dense_matmul(m, planes)
        np.testing.assert_allclose(out[0], 0.0)
        np.testing.assert_allclose(out[1], 2.0)
        np.testing.assert_allclose(out[2], 0.0)

    def test_zero_row_matrix(self):
        m = CSRMatrix.empty(4)
        out = sparse_dense_matmul(m, np.ones((4, 3), dtype=np.float32))
        assert out.shape == (0, 3)

    def test_chunking_is_transparent(self, rng):
        m, dense = random_csr(rng, n_rows=50)
        planes = rng.standard_normal((30, 4)).astype(np.float32)
        full = sparse_dense_matmul(m, planes, chunk_rows=1000)
        tiny = sparse_dense_matmul(m, planes, chunk_rows=3)
        np.testing.assert_allclose(full, tiny, rtol=1e-5)

    def test_dimension_mismatch_raises(self, rng):
        m, _ = random_csr(rng)
        with pytest.raises(ValueError):
            sparse_dense_matmul(m, np.ones((29, 3), dtype=np.float32))

    def test_out_parameter(self, rng):
        m, dense = random_csr(rng)
        planes = rng.standard_normal((30, 4)).astype(np.float32)
        out = np.empty((m.n_rows, 4), dtype=np.float32)
        result = sparse_dense_matmul(m, planes, out=out)
        assert result is out
        np.testing.assert_allclose(out, dense @ planes, rtol=1e-4, atol=1e-5)

    def test_wrong_out_shape_raises(self, rng):
        m, _ = random_csr(rng)
        planes = rng.standard_normal((30, 4)).astype(np.float32)
        with pytest.raises(ValueError):
            sparse_dense_matmul(m, planes, out=np.empty((1, 1), dtype=np.float32))


class TestRowDots:
    def test_matches_reference(self, rng):
        m, _ = random_csr(rng)
        vec = rng.standard_normal(30).astype(np.float32)
        ids = np.asarray([0, 5, 5, 11, 3])
        np.testing.assert_allclose(
            row_dots_dense(m, ids, vec),
            row_dots_dense_reference(m, ids, vec),
            rtol=1e-4,
            atol=1e-5,
        )

    def test_matches_dense(self, rng):
        m, dense = random_csr(rng)
        vec = rng.standard_normal(30).astype(np.float32)
        ids = np.arange(m.n_rows)
        np.testing.assert_allclose(
            row_dots_dense(m, ids, vec), dense @ vec, rtol=1e-4, atol=1e-5
        )

    def test_empty_candidate_list(self, rng):
        m, _ = random_csr(rng)
        out = row_dots_dense(m, np.empty(0, dtype=np.int64), np.zeros(30, np.float32))
        assert out.size == 0

    def test_all_empty_rows(self):
        m = CSRMatrix.from_rows([([], []), ([], [])], 3)
        out = row_dots_dense(m, np.asarray([0, 1]), np.ones(3, np.float32))
        np.testing.assert_array_equal(out, [0.0, 0.0])


class TestDensifyQuery:
    def test_scatter(self):
        out = densify_query(np.asarray([1, 3]), np.asarray([2.0, 4.0], np.float32), 5)
        np.testing.assert_allclose(out, [0, 2, 0, 4, 0])

    def test_reuse_buffer_clears(self):
        buf = np.ones(5, dtype=np.float32)
        out = densify_query(np.asarray([0]), np.asarray([9.0], np.float32), 5, out=buf)
        assert out is buf
        np.testing.assert_allclose(out, [9, 0, 0, 0, 0])


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_matmul_property_vs_scipy(data):
    n_rows = data.draw(st.integers(1, 6))
    n_cols = data.draw(st.integers(1, 8))
    h = data.draw(st.integers(1, 4))
    rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
    dense = (rng.random((n_rows, n_cols)) < 0.4) * rng.standard_normal(
        (n_rows, n_cols)
    )
    m = CSRMatrix.from_dense(dense.astype(np.float32))
    planes = rng.standard_normal((n_cols, h)).astype(np.float32)
    ours = sparse_dense_matmul(m, planes)
    scipys = m.to_scipy() @ planes
    np.testing.assert_allclose(ours, scipys, rtol=1e-4, atol=1e-5)
