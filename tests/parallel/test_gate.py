"""ReadWriteGate: the retirement-vs-broadcast exclusion primitive.

The properties that make it fit for window retirement: readers overlap
freely, a writer is exclusive against readers AND writers, and a
*waiting* writer blocks new readers (a steady broadcast stream cannot
starve retirement).
"""

from __future__ import annotations

import threading
import time

from repro.parallel import ReadWriteGate


def _spawn(fn):
    t = threading.Thread(target=fn, daemon=True)
    t.start()
    return t


class TestReadWriteGate:
    def test_readers_overlap(self):
        gate = ReadWriteGate()
        inside = threading.Barrier(3, timeout=10)

        def reader():
            with gate.read():
                inside.wait()  # all three in the gate at once

        threads = [_spawn(reader) for _ in range(3)]
        for t in threads:
            t.join(timeout=10)
            assert not t.is_alive()

    def test_writer_excludes_readers(self):
        gate = ReadWriteGate()
        order: list[str] = []
        reader_in = threading.Event()
        release_reader = threading.Event()

        def reader():
            with gate.read():
                reader_in.set()
                release_reader.wait(timeout=10)
                order.append("reader-done")

        def writer():
            with gate.write():
                order.append("writer")

        rt = _spawn(reader)
        assert reader_in.wait(timeout=10)
        wt = _spawn(writer)
        time.sleep(0.05)
        # The writer cannot enter while the reader is inside.
        assert not gate.writer_active
        assert order == []
        release_reader.set()
        rt.join(timeout=10)
        wt.join(timeout=10)
        assert order == ["reader-done", "writer"]

    def test_waiting_writer_blocks_new_readers(self):
        """Writer preference: once a writer queues, later readers wait —
        so retirement cannot be starved by a continuous query stream."""
        gate = ReadWriteGate()
        order: list[str] = []
        first_in = threading.Event()
        release_first = threading.Event()

        def first_reader():
            with gate.read():
                first_in.set()
                release_first.wait(timeout=10)

        def writer():
            with gate.write():
                order.append("writer")

        def late_reader():
            with gate.read():
                order.append("late-reader")

        rt = _spawn(first_reader)
        assert first_in.wait(timeout=10)
        wt = _spawn(writer)
        time.sleep(0.05)  # writer now waiting on the in-flight reader
        lt = _spawn(late_reader)
        time.sleep(0.05)
        assert order == []  # late reader queued behind the waiting writer
        release_first.set()
        for t in (rt, wt, lt):
            t.join(timeout=10)
            assert not t.is_alive()
        assert order[0] == "writer"

    def test_release_on_exception(self):
        gate = ReadWriteGate()
        for side in (gate.read, gate.write):
            try:
                with side():
                    raise RuntimeError("boom")
            except RuntimeError:
                pass
        # Fully released: both sides acquire cleanly afterwards.
        with gate.write():
            assert gate.writer_active
        with gate.read():
            assert gate.readers == 1
        assert gate.readers == 0 and not gate.writer_active
