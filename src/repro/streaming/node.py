"""``StreamingPLSH`` — one node's full streaming stack (Sections 4 & 6).

A node owns a time-partitioned static tier
(:class:`~repro.streaming.partitions.PartitionedStatic` — an ordered
list of time-ranged partitions, each with its own local tables), a
:class:`DeltaTable`, and a :class:`DeletionFilter`.  Inserts append to
the delta; when the delta reaches ``eta x capacity`` it is merged into
the **newest partition only**, so merge cost tracks one partition
instead of the whole corpus.  Queries run against every live partition
plus the delta structures and the answers are combined; candidates from
any side are screened against the deletion bitvector (and the optional
time window) before the distance computation.

**Partition lifecycle.**  Every inserted row carries a timestamp (an
explicit non-decreasing value, or the node's logical clock — one tick
per insert batch).  The lifecycle has three verbs:

* **roll** (:meth:`roll_partition`) seals the newest partition and opens
  an empty one at the id high-water mark; subsequent merges fold into
  the new partition.  Rolling needs no drain — a merge already in
  flight lands in the post-roll partition (its prepared build is
  detected stale by object identity and rebuilt on the blocking commit
  path), and delta rows always merge into whichever partition is newest
  at commit time.
* **merge** (:meth:`begin_merge` / :meth:`commit_merge` /
  :meth:`merge_now`) compacts the frozen delta into the newest
  partition; older partitions are never rebuilt.
* **drop** (:meth:`retire_before`) retires every partition whose newest
  row predates the cutoff in O(1) per partition — a pointer drop, no
  table rebuild — and tombstones the ragged edge (boundary-partition and
  delta rows older than the cutoff).  Dropped id ranges become *holes*
  in the local id space: bases never shift, so local ids stay stable
  under retirement exactly as they are stable under merge, and the
  cluster's global-id map keeps translating.  :meth:`retire_window`
  (the cluster's window-advance hook) drops *all* partitions the same
  way; :meth:`retire` remains the wholesale erase that also resets the
  id space.

**Time-filtered queries.**  ``query``/``query_batch`` accept an optional
half-open ``time_range=(t0, t1)``: partitions whose ``[t_min, t_max]``
span does not overlap are pruned without being probed (counted on the
facade), and rows of probed structures are screened exactly by their
timestamps — so answers equal the time-windowed oracle, and a full-range
query stays **bit-identical** to the monolithic static over the same
rows (see :mod:`repro.streaming.partitions` for why the per-partition
split commutes with every kernel stage).

**Non-blocking merges.**  The paper's headline scenario is *concurrent*
serving — the firehose keeps inserting and queries keep flowing while
delta→newest-partition merges happen underneath (Figure 11).  The merge
is split into two phases:

* :meth:`begin_merge` *freezes* the current delta (a fresh, empty delta
  takes over for new inserts) and launches the expensive table build —
  :func:`repro.streaming.merge.prepare_merge` over the frozen
  ``(newest partition, delta)`` snapshot — on a background
  :class:`~repro.parallel.background.BackgroundTask`.  The call returns
  immediately; the node keeps answering queries against
  ``partitions + frozen delta + fresh delta``.
* :meth:`commit_merge` is the short critical section: join the build,
  swap the prepared index into the newest partition, drop the frozen
  delta, and invalidate the worker pools.  Deletions need no replay —
  the bitvector is keyed by node-local ids, which are stable under
  merge, so tombstones set mid-build screen candidates of the new
  partition the instant it lands.

The overlapped path returns query answers **bit-identical** to the
synchronous one (:meth:`merge_now`): LSH candidate sets depend only on
the rows and their cached hash values, not on which structure holds
them, and the ``partitions → frozen → fresh`` concatenation preserves
the ascending local-id order the merged layout produces.  The paper's
"insert visible by the next query" guarantee holds throughout: inserts
go to the live fresh delta, which every query consults.

``overlap_merges=True`` makes ``auto_merge`` use the overlapped pipeline
(inserts trigger ``begin_merge`` and opportunistically commit finished
builds; a second threshold crossing while a merge is in flight drains it
first — at most one merge is ever in flight).  The default remains the
blocking merge, the reproduction's reference behavior.

Local id space: static partitions occupy ``[0, n_static)`` (``n_static``
is the id high-water mark, *including* holes left by drops); frozen-delta
row ``f`` is addressed as ``n_static + f`` and fresh-delta row ``d`` as
``n_static + n_frozen + d``.  A merge folds the frozen rows into the
newest partition's range in insertion order, so local ids are *stable
under merge and retirement* — a property the cluster's global-id mapping
and the tests rely on.

Worker-pool lifecycle: a fork pool snapshots the node copy-on-write, so
any *visible* mutation (insert/commit/delete/retire) invalidates the
cached executors and the next parallel batch re-forks.  ``begin_merge``
and ``roll_partition`` deliberately do **not** invalidate: a pre-begin
(or pre-roll) snapshot still holds the same rows and answers
bit-identically, so pools stay warm across merge *starts* and partition
rolls and only pay the re-fork when visible content actually changes.
"""

from __future__ import annotations

import numpy as np

from repro.core.candidates import mask_segments, unique_segments
from repro.core.distance import angular_distance
from repro.core.hashing import AllPairsHasher
from repro.core.query import QueryResult
from repro.parallel import (
    BackgroundTask,
    ExecutorCache,
    default_workers,
    resolve_backend,
    shard_bounds,
)
from repro.params import PLSHParams
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import densify_query, row_dots_dense, row_dots_dense_batch
from repro.streaming.deletion import DeletionFilter
from repro.streaming.delta import DeltaTable
from repro.streaming.merge import merge_into_static, prepare_merge
from repro.streaming.partitions import PartitionedStatic
from repro.utils.timing import StageTimes

__all__ = ["StreamingPLSH", "CapacityError"]


class CapacityError(RuntimeError):
    """Raised when an insert would exceed the node's capacity."""


def _normalize_time_range(
    time_range: tuple[int, int] | list[int] | None,
) -> tuple[int, int] | None:
    if time_range is None:
        return None
    t0, t1 = time_range
    return (int(t0), int(t1))


class StreamingPLSH:
    """A capacity-bounded streaming PLSH node over time-ranged partitions."""

    def __init__(
        self,
        dim: int,
        params: PLSHParams,
        capacity: int,
        *,
        delta_fraction: float = 0.1,
        auto_merge: bool = True,
        overlap_merges: bool = False,
        hasher: AllPairsHasher | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0.0 < delta_fraction <= 1.0:
            raise ValueError(
                f"delta_fraction must be in (0, 1], got {delta_fraction}"
            )
        self.dim = dim
        self.params = params
        self.capacity = capacity
        self.delta_fraction = delta_fraction
        self.auto_merge = auto_merge
        self.overlap_merges = overlap_merges
        self.hasher = hasher if hasher is not None else AllPairsHasher(params, dim)
        self.static = PartitionedStatic(dim, params, self.hasher)
        self.delta = DeltaTable(dim, params, self.hasher)
        self.deletions = DeletionFilter(capacity)
        self.n_merges = 0
        self.times = StageTimes()
        #: per-row insert timestamps of the fresh delta (parallel array).
        self._delta_ts = np.empty(0, dtype=np.int64)
        #: the delta snapshot a pending merge is folding in (None when no
        #: merge is in flight); queried between begin and commit.
        self._frozen: DeltaTable | None = None
        self._frozen_ts: np.ndarray | None = None
        #: the background build of the pending merge (None once joined).
        self._merge_task: BackgroundTask | None = None
        #: the newest partition's index at ``begin_merge`` time — object
        #: identity detects a roll/drop racing the background build.
        self._merge_base = None
        #: logical clock: the timestamp the next default-stamped insert
        #: batch receives (one tick per batch).
        self._clock = 0
        #: newest timestamp ever assigned (inserts must not go backwards).
        self._last_ts: int | None = None
        #: high-water retirement cutoff (rows below it are already
        #: reported retired; re-retiring must not double-report).
        self._retire_floor: int | None = None
        #: persistent executors for parallel batch queries.  A fork pool
        #: snapshots the node copy-on-write, so any visible mutation
        #: (insert/commit/delete/retire) invalidates the cache and the next
        #: parallel batch re-forks; between mutations — the read-heavy
        #: common case — pools stay warm across batches.
        self._executors = ExecutorCache(self)

    # -- executor lifecycle --------------------------------------------------

    def _executor(self, workers: int, backend: str | None):
        # fork()ing a NEW worker pool while any merge-builder thread may
        # be mid numpy/BLAS call is the classic multithreaded-fork
        # deadlock: the child inherits allocator/BLAS locks held by a
        # thread that does not exist in the child.  The hazard is
        # process-wide (a *sibling* node's build makes this node's fork
        # unsafe too), so while any background build runs, new executor
        # requests get the in-process thread backend instead
        # (bit-identical results; invalidated at commit like any pool).
        # Pools forked *before* any build started stay valid — every
        # fork pool is created through this guard or the make_executor
        # backstop, so no builder thread existed at its fork time — and
        # are served from the cache untouched.
        if (
            workers > 1
            and BackgroundTask.any_active()
            and resolve_backend(backend) == "fork_pool"
        ):
            warm = self._executors.peek(workers, backend)
            if warm is not None:
                return warm  # forked while no build was running — safe
            backend = "thread"
        return self._executors.get(workers, backend)

    def _invalidate_executors(self) -> None:
        """Drop pooled workers whose copy-on-write snapshot went stale."""
        self._executors.close()

    def prepare_workers(
        self, workers: int | None = None, backend: str | None = None
    ) -> None:
        """Pre-create the pool :meth:`query_batch` would use (no-op for
        ``workers <= 1``).  Callers that will invoke ``query_batch`` from a
        worker thread (the coordinator's concurrent broadcast) warm pools
        here, serially, so no fork() ever happens while sibling threads
        run numpy kernels — the same multithreaded-fork hazard
        :meth:`_executor` guards against for merge builders."""
        if workers is None:
            workers = default_workers()
        if workers > 1:
            self._executor(workers, backend)

    def close(self) -> None:
        """Release persistent worker pools (idempotent); also closes every
        partition engine's pools.  Nodes queried only with ``workers == 1``
        hold no pools and need no close.  A merge in flight is left alone
        (its daemon builder finishes in the background and the result can
        still be committed); call :meth:`commit_merge` or :meth:`retire`
        first to settle it."""
        self._invalidate_executors()
        self.static.close()

    def __enter__(self) -> "StreamingPLSH":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- sizes -------------------------------------------------------------

    @property
    def n_static(self) -> int:
        """Static id-space high-water mark (includes holes from drops)."""
        return self.static.n_items

    @property
    def n_static_resident(self) -> int:
        """Rows actually held in static partitions (excludes holes)."""
        return self.static.n_resident

    @property
    def n_partitions(self) -> int:
        return self.static.n_partitions

    @property
    def n_frozen(self) -> int:
        """Rows in the frozen delta a pending merge is folding in."""
        return 0 if self._frozen is None else len(self._frozen)

    @property
    def n_delta(self) -> int:
        """Rows in the live (fresh) delta — the merge-threshold quantity."""
        return len(self.delta)

    @property
    def n_total(self) -> int:
        """Resident rows (live partitions + frozen + fresh deltas).

        Shrinks when partitions are dropped — retirement returns capacity."""
        return self.n_static_resident + self.n_frozen + self.n_delta

    @property
    def id_space(self) -> int:
        """Local ids ever assigned live in ``[0, id_space)``; the next
        insert starts here.  Never shrinks (holes persist)."""
        return self.n_static + self.n_frozen + self.n_delta

    @property
    def n_live(self) -> int:
        return self.n_total - self.deletions.n_deleted

    @property
    def is_full(self) -> bool:
        return self.n_total >= self.capacity

    @property
    def delta_threshold(self) -> int:
        """Delta size that triggers a merge: ``eta * capacity``."""
        return max(1, int(self.delta_fraction * self.capacity))

    @property
    def clock(self) -> int:
        """The timestamp the next default-stamped insert batch receives."""
        return self._clock

    # -- merge lifecycle -----------------------------------------------------

    @property
    def merge_in_flight(self) -> bool:
        """True between :meth:`begin_merge` and :meth:`commit_merge`."""
        return self._frozen is not None

    @property
    def merge_ready(self) -> bool:
        """True when a pending merge's background build has settled — a
        commit no longer has to wait on the builder thread.  (If the
        build *failed*, only a blocking ``commit_merge(wait=True)`` will
        land it, by rebuilding synchronously; polls keep returning
        False.)"""
        return self._frozen is not None and (
            self._merge_task is None or self._merge_task.done()
        )

    def begin_merge(self) -> bool:
        """Freeze the delta and start building the merged newest partition
        off-path.

        Returns True if a merge is (now) in flight, False if there was
        nothing to merge.  The call itself is cheap: the current delta
        becomes the frozen snapshot, a fresh delta takes over for new
        inserts, and the expensive table construction — scoped to the
        newest partition plus the frozen rows, never the whole static —
        runs on a background thread.  Queries keep serving
        ``partitions + frozen + fresh`` throughout; worker pools stay warm
        (see the module docstring — invalidation happens at commit, when
        answers actually change layout).
        """
        if self._frozen is not None:
            return True
        if self.n_delta == 0:
            return False
        self._frozen = self.delta
        self._frozen_ts = self._delta_ts
        self.delta = DeltaTable(self.dim, self.params, self.hasher)
        self._delta_ts = np.empty(0, dtype=np.int64)
        # The build reads only the frozen snapshot + the newest partition,
        # both immutable while the merge is in flight (inserts go to the
        # fresh delta; deletions touch only the bitvector).  A partition
        # roll or drop racing the build replaces the newest index object;
        # commit detects that by identity and rebuilds against the new
        # target on the blocking path.
        self._merge_base = self.static.newest.index
        self._merge_task = BackgroundTask(
            prepare_merge, self._merge_base, self._frozen
        )
        return True

    def commit_merge(self, *, wait: bool = True) -> bool:
        """Swap a pending merge into the newest partition (the critical
        section).

        Returns True if a merge was committed.  ``wait=False`` turns the
        call into an opportunistic poll with a hard contract: it never
        blocks and never raises a background error — it commits only if
        the build already finished successfully *and* still targets the
        current newest partition, otherwise returns False immediately
        (the hook the insert path uses).  With ``wait=True`` the call
        drains the build first — this is where merge backpressure lands
        when the fresh delta fills faster than builds complete, and also
        where a *failed* or *stale* background build is recovered: the
        merge is rebuilt synchronously against the current newest
        partition (a roll or retirement may have replaced it mid-build),
        so frozen rows are never stranded and build errors only surface
        on the explicit drain path.

        Deletions issued mid-build need no replay: the bitvector is keyed
        by node-local ids, which the merge preserves, and it is consulted
        at query time — so tombstones screen the new partition immediately.
        """
        frozen = self._frozen
        if frozen is None:
            return False
        task = self._merge_task
        if not wait and (task is None or not task.done()):
            # Still building — or an earlier build failed (task consumed)
            # and recovery needs a blocking commit.  Polls never wait,
            # never rebuild.
            return False
        prepared = None
        if task is not None:
            if wait:
                task.wait()
            try:
                prepared = task.result()
            except Exception:
                if not wait:
                    return False  # poll: keep serving the frozen rows
                prepared = None  # blocking recovery rebuilds below
            self._merge_task = None
        if prepared is not None and self._merge_base is not self.static.newest.index:
            # A roll or retirement replaced the newest partition while the
            # build ran; the prepared index targets a sealed (or dropped)
            # partition.  Rebuild against the current newest on the
            # blocking path; polls give up (frozen rows keep serving).
            prepared = None
        if prepared is None and not wait:
            return False
        with self.times.stage("merge_commit"):
            if prepared is None:
                # Recovery path (failed, consumed, or stale build):
                # rebuild synchronously so the frozen rows are never
                # stranded; a deterministic failure re-raises here, on
                # the blocking drain path where it belongs.  The rebuild
                # counts under "merge_commit" only — it ran on the
                # serving path, not the background thread.
                prepared = prepare_merge(self.static.newest.index, frozen)
            else:
                self.times.add("merge_build", prepared.build_seconds)
            newest = self.static.newest
            if prepared.index.n_items != newest.n_items + len(frozen):
                raise AssertionError(
                    "prepared merge is stale: "
                    f"{prepared.index.n_items} rows != "
                    f"{newest.n_items} partition + {len(frozen)} frozen"
                )
            frozen_ts = self._frozen_ts
            assert frozen_ts is not None
            old_index = self.static.commit_newest(prepared.index, frozen_ts)
            self._frozen = None
            self._frozen_ts = None
            self._merge_base = None
            self.n_merges += 1
        self._invalidate_executors()
        if old_index.engine is not None and old_index is not prepared.index:
            old_index.engine.close()
        return True

    def merge_now(self) -> None:
        """Merge synchronously: drain any pending merge, then fold the
        live delta into the newest partition on the calling thread."""
        self.commit_merge(wait=True)
        if self.n_delta == 0:
            return
        with self.times.stage("merge"):
            newest = self.static.newest
            merged = merge_into_static(newest.index, self.delta)
            old_index = self.static.commit_newest(merged, self._delta_ts)
            self.delta.clear()
            self._delta_ts = np.empty(0, dtype=np.int64)
            self.n_merges += 1
        self._invalidate_executors()
        if old_index.engine is not None and old_index is not merged:
            old_index.engine.close()

    def _abandon_merge(self) -> None:
        """Discard a pending merge (retirement): join the builder so its
        result cannot land later, then drop the frozen snapshot."""
        task = self._merge_task
        self._merge_task = None
        if task is not None:
            task.wait()
        self._frozen = None
        self._frozen_ts = None
        self._merge_base = None

    # -- partition lifecycle -------------------------------------------------

    def roll_partition(self) -> int:
        """Seal the newest partition and open an empty one; returns the
        open partition's ``seq``.

        Needs no drain and no pool invalidation: answers are unchanged
        (same rows, same ids), and a merge in flight simply lands in the
        post-roll partition (commit detects the stale build target and
        rebuilds on the blocking path).  Fresh-delta rows inserted before
        the roll also merge into the post-roll partition — partition time
        ranges may therefore overlap at the boundary, which the overlap
        test and per-row screens handle exactly."""
        return self.static.roll().seq

    def retire_before(self, cutoff: int) -> np.ndarray:
        """Retire every row with ``timestamp < cutoff``; returns their
        node-local ids (sorted), excluding rows already retired by an
        earlier cutoff.

        Partitions wholly older than the cutoff are **dropped in O(1)**
        (a pointer drop — no table is read or rebuilt; their deletion
        bits are cleared and their id ranges become permanent holes).
        The ragged edge — rows older than the cutoff inside a partition
        that also has newer rows, plus frozen/fresh delta rows older than
        the cutoff — is tombstoned through the deletion filter, a cost
        bounded by one partition plus the delta.  Subsequent inserts must
        carry timestamps >= the cutoff (the logical clock is advanced),
        so the retirement watermark is monotone.
        """
        cutoff = int(cutoff)
        floor = self._retire_floor
        if floor is not None and cutoff <= floor:
            return np.empty(0, dtype=np.int64)
        retired: list[np.ndarray] = []
        dropped, ragged = self.static.drop_before(cutoff, floor=floor)
        for part in dropped:
            lo = (
                int(np.searchsorted(part.timestamps, floor, side="left"))
                if floor is not None
                else 0
            )
            if part.n_items > lo:
                retired.append(
                    np.arange(
                        part.base + lo,
                        part.base + part.n_items,
                        dtype=np.int64,
                    )
                )
            self.deletions.clear_range(part.base, part.base + part.n_items)
            if part.index.engine is not None:
                part.index.engine.close()
        if ragged.size:
            retired.append(ragged)
            self.deletions.delete(ragged)
        n_frozen = self.n_frozen
        if self._frozen_ts is not None and self._frozen_ts.size:
            lo = (
                int(np.searchsorted(self._frozen_ts, floor, side="left"))
                if floor is not None
                else 0
            )
            hi = int(np.searchsorted(self._frozen_ts, cutoff, side="left"))
            if hi > lo:
                ids = np.arange(
                    self.n_static + lo, self.n_static + hi, dtype=np.int64
                )
                retired.append(ids)
                self.deletions.delete(ids)
        if self._delta_ts.size:
            base = self.n_static + n_frozen
            lo = (
                int(np.searchsorted(self._delta_ts, floor, side="left"))
                if floor is not None
                else 0
            )
            hi = int(np.searchsorted(self._delta_ts, cutoff, side="left"))
            if hi > lo:
                ids = np.arange(base + lo, base + hi, dtype=np.int64)
                retired.append(ids)
                self.deletions.delete(ids)
        self._retire_floor = cutoff
        self._last_ts = (
            cutoff if self._last_ts is None else max(self._last_ts, cutoff)
        )
        self._clock = max(self._clock, cutoff)
        if dropped or retired:
            self._invalidate_executors()
        if not retired:
            return np.empty(0, dtype=np.int64)
        out = np.concatenate(retired)
        out.sort()
        return out

    def retire_window(self) -> np.ndarray:
        """Drop *every* partition and delta row (the cluster's
        window-advance retirement); returns the node-local ids of all
        rows that were resident.

        Unlike :meth:`retire` the id space is **not** reset: dropped
        ranges become holes and the next insert continues after them, so
        the cluster's append-only global-id map stays aligned without a
        node teardown.  Delta ids (frozen + fresh) are absorbed into the
        id space the same way."""
        n_extra = self.n_frozen + self.n_delta
        self._abandon_merge()
        ranges = [
            np.arange(p.base, p.base + p.n_items, dtype=np.int64)
            for p in self.static.partitions
            if p.n_items
        ]
        if n_extra:
            ranges.append(
                np.arange(
                    self.n_static, self.n_static + n_extra, dtype=np.int64
                )
            )
        for part in self.static.reset_window(absorb=n_extra):
            if part.index.engine is not None:
                part.index.engine.close()
        self.delta.clear()
        self._delta_ts = np.empty(0, dtype=np.int64)
        self.deletions.reset()
        self._invalidate_executors()
        if not ranges:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(ranges)

    # -- updates ------------------------------------------------------------

    def insert_batch(
        self,
        vectors: CSRMatrix,
        *,
        timestamps: np.ndarray | None = None,
    ) -> np.ndarray:
        """Insert rows; returns their node-local ids.

        ``timestamps`` optionally stamps each row with an explicit int64
        insert time — values must be non-decreasing within the batch and
        not precede any previously assigned timestamp (time never goes
        backwards; partition time ranges rely on it).  Without it, every
        row gets the node's logical clock value and the clock ticks once
        per batch.

        Raises :class:`CapacityError` if the batch does not fit — the
        cluster layer is responsible for advancing the insert window and
        retiring old windows (Section 6), a node never evicts by itself.

        With ``auto_merge``: crossing the delta threshold triggers a
        blocking :meth:`merge_now`, or — with ``overlap_merges`` — a
        non-blocking :meth:`begin_merge` (draining the previous merge
        first if one is still in flight, so at most one build runs at a
        time).  Finished background builds are also committed here
        opportunistically: the insert invalidates worker pools anyway, so
        the commit rides along for free.
        """
        n_rows = vectors.n_rows
        if self.n_total + n_rows > self.capacity:
            raise CapacityError(
                f"insert of {n_rows} rows exceeds capacity "
                f"{self.capacity} (current {self.n_total})"
            )
        if timestamps is None:
            ts = np.full(n_rows, self._clock, dtype=np.int64)
        else:
            ts = np.ascontiguousarray(timestamps, dtype=np.int64)
            if ts.shape != (n_rows,):
                raise ValueError(
                    f"{ts.size} timestamps for {n_rows} rows"
                )
            if n_rows > 1 and np.any(np.diff(ts) < 0):
                raise ValueError(
                    "timestamps must be non-decreasing within a batch"
                )
            if n_rows and self._last_ts is not None and int(ts[0]) < self._last_ts:
                raise ValueError(
                    f"timestamp {int(ts[0])} precedes the node clock "
                    f"({self._last_ts}); time never goes backwards"
                )
        if self.overlap_merges:
            self.commit_merge(wait=False)
        with self.times.stage("insert"):
            base = self.n_static + self.n_frozen
            self.deletions.ensure(base + self.n_delta + n_rows)
            local = self.delta.insert_batch(vectors) + base
            if n_rows:
                self._delta_ts = (
                    np.concatenate([self._delta_ts, ts])
                    if self._delta_ts.size
                    else ts
                )
                self._last_ts = int(ts[-1])
                self._clock = max(self._clock, self._last_ts + 1)
        self._invalidate_executors()
        if self.auto_merge and self.n_delta >= self.delta_threshold:
            if self.overlap_merges:
                self.commit_merge(wait=True)
                self.begin_merge()
            else:
                self.merge_now()
        return local

    def resident_mask(self, local_ids: np.ndarray) -> np.ndarray:
        """Which of ``local_ids`` address *resident* rows — i.e. not a
        hole left by a dropped partition or an absorbed delta range.
        Tombstoned rows count as resident (deletion is a query-time
        screen, not a drop); callers translating stale id maps (the
        cluster's global-id map keeps hole entries) use this to avoid
        acting on rows that are already gone."""
        ids = np.asarray(local_ids, dtype=np.int64)
        mask = np.zeros(ids.shape, dtype=bool)
        for part in self.static.partitions:
            if part.n_items:
                mask |= (ids >= part.base) & (ids < part.base + part.n_items)
        extra = self.n_frozen + self.n_delta
        if extra:
            mask |= (ids >= self.n_static) & (ids < self.n_static + extra)
        return mask

    def delete(self, local_ids: np.ndarray | int) -> int:
        """Tombstone rows by node-local id; returns newly deleted count.

        Safe at any point of the merge lifecycle: the filter is keyed by
        local ids, which are stable under merge, and is screened at query
        time on every structure (partitions, frozen, fresh)."""
        n = self.deletions.delete(local_ids)
        if n:
            self._invalidate_executors()
        return n

    def retire(self) -> None:
        """Erase the node wholesale (the paper's expiration mechanism).

        Unlike :meth:`retire_window` this also resets the local id space
        and the logical clock — it is a teardown, not a window advance."""
        self._abandon_merge()
        self.close()
        self.static = PartitionedStatic(self.dim, self.params, self.hasher)
        self.delta.clear()
        self._delta_ts = np.empty(0, dtype=np.int64)
        self.deletions.reset()
        self._clock = 0
        self._last_ts = None
        self._retire_floor = None

    # -- queries -------------------------------------------------------------

    def _delta_views(self) -> list[tuple[DeltaTable, int, np.ndarray]]:
        """The delta structures a query must consult, with their local-id
        offsets and timestamp columns: the frozen snapshot (mid-merge)
        before the fresh delta, preserving the ascending id order the
        merged layout produces."""
        views: list[tuple[DeltaTable, int, np.ndarray]] = []
        if self._frozen is not None and len(self._frozen):
            views.append((self._frozen, self.n_static, self._frozen_ts))
        if len(self.delta):
            views.append(
                (self.delta, self.n_static + self.n_frozen, self._delta_ts)
            )
        return views

    def query(
        self,
        q_cols: np.ndarray,
        q_vals: np.ndarray,
        *,
        radius: float | None = None,
        time_range: tuple[int, int] | None = None,
    ) -> QueryResult:
        """R-near neighbors across partitions + frozen + fresh, minus
        deletions; ``time_range=(t0, t1)`` restricts answers to rows with
        ``t0 <= timestamp < t1`` (cold partitions are pruned)."""
        radius = self.params.radius if radius is None else radius
        time_range = _normalize_time_range(time_range)
        q_cols = np.asarray(q_cols, dtype=np.int64)
        q_vals = np.asarray(q_vals, dtype=np.float32)
        keys = self._query_keys(q_cols, q_vals)  # hash once, use everywhere

        with self.times.stage("query_static"):
            static_res = self.static.query(
                q_cols,
                q_vals,
                radius=radius,
                keys=keys,
                deletions=self.deletions,
                time_range=time_range,
            )
        with self.times.stage("query_delta"):
            views = self._delta_views()
            # Densify once; both views (frozen + fresh) share it.
            q_dense = densify_query(q_cols, q_vals, self.dim) if views else None
            delta_parts = [
                self._query_delta(
                    table, offset, ts, q_dense, radius, keys, time_range
                )
                for table, offset, ts in views
            ]
        parts = [static_res, *delta_parts]
        return QueryResult(
            np.concatenate([p.indices for p in parts]),
            np.concatenate([p.distances for p in parts]),
        )

    def query_batch(
        self,
        queries: CSRMatrix,
        *,
        radius: float | None = None,
        mode: str | None = None,
        workers: int | None = None,
        backend: str | None = None,
        time_range: tuple[int, int] | None = None,
    ) -> list[QueryResult]:
        """Batch R-near-neighbor queries across partitions + frozen + fresh.

        ``mode="vectorized"`` (the default) hashes the whole batch *once*
        in the parent and shares the ``(B, L)`` key matrix between every
        partition and the delta structures; each partition runs the batch
        kernel and each delta side the segmented dedup / blocked-dot
        pipeline, each with a single vectorized deletion-filter (and
        optional time-window) screen.  ``mode="pipelined"`` runs the
        partitions through the cache-blocked pipelined kernel
        (:mod:`repro.core.pipelined`, bit-identical to vectorized and
        faster on memory-bound shards); the delta structures are small and
        keep their segmented pipeline.  ``mode="loop"`` is the per-query
        path, kept for ablation (always serial).

        ``time_range=(t0, t1)`` restricts answers to rows with
        ``t0 <= timestamp < t1``; partitions that do not overlap the
        window are pruned without being probed (the facade counts probes
        and prunes), and probed structures are screened per row — answers
        equal the time-windowed oracle exactly.

        ``workers > 1`` shards the batch over the :mod:`repro.parallel`
        layer: each worker answers a contiguous sub-block against *all*
        structures with the same key slice, so the partition/frozen/fresh
        split — and therefore every merge boundary — is identical in every
        shard and results are bit-identical to ``workers=1``.  ``backend``
        picks the executor (persistent fork pool on Linux by default,
        threads otherwise); the pool snapshots the node at fork time and
        is re-forked automatically after any insert/commit/delete.
        ``None`` defers to ``PLSH_WORKERS``.  Worker engine counters and
        per-stage times are merged back into the static engine's
        ``QueryStats`` and node times, so Figure 5/11 breakdowns stay real
        under parallelism.
        """
        if mode is None:
            mode = "vectorized"
        if mode == "loop":
            return [
                self.query(*queries.row(r), radius=radius, time_range=time_range)
                for r in range(queries.n_rows)
            ]
        if mode not in ("vectorized", "pipelined"):
            raise ValueError(
                f"unknown mode {mode!r}; expected 'vectorized', "
                f"'pipelined' or 'loop'"
            )
        radius = self.params.radius if radius is None else radius
        time_range = _normalize_time_range(time_range)
        n = queries.n_rows
        if n == 0:
            return []
        if workers is None:
            workers = default_workers()
        # Hash once, use everywhere (every partition + deltas + every
        # shard share the key matrix).
        u = self.hasher.hash_functions(queries)
        keys = self.hasher.table_keys_batch(u)
        if workers <= 1:
            return self._query_batch_shard(
                queries, radius, keys, mode=mode, time_range=time_range
            )

        # Workers probe private facade copies, so book the (identical)
        # probe/prune decision once in the parent — serial parity for
        # the partition counters in stats rows.
        self.static.count_scan(time_range)
        bounds = shard_bounds(n, workers)
        tasks = [
            (
                queries.slice_rows(int(b0), int(b1)),
                keys[b0:b1],
                radius,
                mode,
                time_range,
            )
            for b0, b1 in zip(bounds[:-1], bounds[1:])
        ]
        ex = self._executor(workers, backend)
        parts = ex.run(_node_shard_worker, tasks)
        results: list[QueryResult] = []
        engine = self.static.engine
        for payload, (counters, eng_stages), node_stages in parts:
            results.extend(
                QueryResult(indices, distances)
                for indices, distances in payload
            )
            if engine is not None:
                nq, coll, uniq, match = counters
                engine.stats.n_queries += nq
                engine.stats.n_collisions += coll
                engine.stats.n_unique += uniq
                engine.stats.n_matches += match
                for name, secs in eng_stages.items():
                    engine.stats.stage_times.add(name, secs)
            for name, secs in node_stages.items():
                self.times.add(name, secs)
        return results

    def _query_batch_shard(
        self,
        queries: CSRMatrix,
        radius: float,
        keys: np.ndarray,
        *,
        engines: dict[int, object] | None = None,
        times: StageTimes | None = None,
        mode: str = "vectorized",
        time_range: tuple[int, int] | None = None,
    ) -> list[QueryResult]:
        """Answer one contiguous sub-block given precomputed keys.

        This is the unit of work the parallel layer distributes: the
        per-partition batch kernels + the delta pipelines (frozen, then
        fresh) + per-query concatenation, all against the same key slice.
        ``engines`` lets a worker substitute private clones of the
        partition engines keyed by partition ``seq`` (private
        dedup/buffers/stats); ``times`` likewise redirects stage
        accounting to a private ``StageTimes`` the parent merges later.
        """
        n = queries.n_rows
        times = self.times if times is None else times
        with times.stage("query_static"):
            static_res = self.static.query_batch(
                queries,
                radius=radius,
                keys=keys,
                mode=mode,
                deletions=self.deletions,
                time_range=time_range,
                engines=engines,
            )
        with times.stage("query_delta"):
            delta_parts = [
                self._query_delta_batch(
                    table, offset, ts, queries, radius, keys, time_range
                )
                for table, offset, ts in self._delta_views()
            ]
        if not delta_parts:
            return static_res
        out: list[QueryResult] = []
        for b in range(n):
            segs = [static_res[b], *(part[b] for part in delta_parts)]
            out.append(
                QueryResult(
                    np.concatenate([s.indices for s in segs]),
                    np.concatenate([s.distances for s in segs]),
                )
            )
        return out

    def _query_keys(self, q_cols: np.ndarray, q_vals: np.ndarray) -> np.ndarray:
        """Step Q1 for this node: the L table keys of the query."""
        q = CSRMatrix(
            np.asarray([0, q_cols.size], dtype=np.int64),
            q_cols.astype(np.int32),
            q_vals,
            self.dim,
            check=False,
        )
        u_row = self.hasher.hash_functions(q)[0]
        return self.hasher.table_keys_for_query(u_row)

    def _query_delta(
        self,
        table: DeltaTable,
        offset: int,
        ts: np.ndarray,
        q_dense: np.ndarray,
        radius: float,
        keys: np.ndarray,
        time_range: tuple[int, int] | None = None,
    ) -> QueryResult:
        """Q2-Q4 against one delta structure (ids offset by ``offset``).

        ``q_dense`` is the densified query, built once by the caller and
        shared across views so a mid-merge query does not pay the
        dim-sized scatter twice.  ``ts`` is the structure's timestamp
        column, screened alongside the deletion filter when a
        ``time_range`` is given."""
        if len(table) == 0:
            return QueryResult(
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32)
            )
        collisions = table.collisions(keys)
        if collisions.size == 0:
            return QueryResult(
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32)
            )
        unique = np.unique(collisions)
        # Deletion screen (this structure's rows live at offset + local).
        live = ~self.deletions.is_deleted(unique + offset)
        if time_range is not None:
            t0, t1 = time_range
            tvals = ts[unique]
            live &= (tvals >= t0) & (tvals < t1)
        unique = unique[live]
        vectors = table.vectors()
        dots = row_dots_dense(vectors, unique, q_dense)
        dists = angular_distance(dots)
        within = dists <= radius
        return QueryResult(unique[within] + offset, dists[within])

    def _query_delta_batch(
        self,
        table: DeltaTable,
        offset: int,
        ts: np.ndarray,
        queries: CSRMatrix,
        radius: float,
        keys: np.ndarray,
        time_range: tuple[int, int] | None = None,
    ) -> list[QueryResult]:
        """Q2-Q4 against one delta structure for a whole batch (segmented)."""
        n = queries.n_rows
        empty = QueryResult(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32)
        )
        if len(table) == 0:
            return [empty] * n
        values, raw_offsets = table.collisions_batch(keys)
        if values.size == 0:
            return [empty] * n
        cand, offsets = unique_segments(values, raw_offsets, len(table))
        # Vectorized deletion (and time-window) screen: one bitvector test
        # over every candidate of the batch (rows live at offset + local).
        if cand.size:
            live = ~self.deletions.is_deleted(cand + offset)
            if time_range is not None:
                t0, t1 = time_range
                tvals = ts[cand]
                live &= (tvals >= t0) & (tvals < t1)
            offsets = mask_segments(offsets, live)
            cand = cand[live]
        dots = row_dots_dense_batch(table.vectors(), cand, offsets, queries)
        dists = angular_distance(dots)
        within = dists <= radius
        out_offsets = mask_segments(offsets, within)
        out_ids = cand[within] + offset
        out_dists = dists[within]
        return [
            QueryResult(
                out_ids[out_offsets[b] : out_offsets[b + 1]],
                out_dists[out_offsets[b] : out_offsets[b + 1]],
            )
            for b in range(n)
        ]


def _node_shard_worker(
    node: StreamingPLSH,
    queries: CSRMatrix,
    keys: np.ndarray,
    radius: float,
    mode: str = "vectorized",
    time_range: tuple[int, int] | None = None,
):
    """Executor task: answer one shard against all node structures.

    ``node`` is the executor state (the fork()ed copy-on-write snapshot,
    or the live node for in-process backends).  Every partition runs on a
    private engine clone and stage times go to a private ``StageTimes``,
    so concurrent shards never contend; both are returned as primitives
    for the parent to merge (partition counters are summed — the parent
    folds them into the newest partition's engine stats).
    """
    engines = node.static.clone_engines()
    times = StageTimes()
    results = node._query_batch_shard(
        queries,
        radius,
        keys,
        engines=engines,
        times=times,
        mode=mode,
        time_range=time_range,
    )
    counters = [0, 0, 0, 0]
    eng_stages: dict[str, float] = {}
    for eng in engines.values():
        s = eng.stats
        counters[0] += s.n_queries
        counters[1] += s.n_collisions
        counters[2] += s.n_unique
        counters[3] += s.n_matches
        for name, secs in s.stage_times.as_dict().items():
            eng_stages[name] = eng_stages.get(name, 0.0) + secs
    return (
        [(r.indices, r.distances) for r in results],
        (tuple(counters), eng_stages),
        times.as_dict(),
    )
