"""Tweet cleaning pipeline (Section 8 preprocessing).

"These tweets were cleaned by removing non-alphabet characters, duplicates
and stop words." — implemented as: lowercase, strip every non-alphabetic
character, split on whitespace, drop stop words, and drop repeated tokens
within a document (tweets are effectively token sets).
"""

from __future__ import annotations

import re

__all__ = ["Tokenizer", "DEFAULT_STOP_WORDS"]

#: A compact English stop-word list: enough to exercise the paper's cleaning
#: step on real text without shipping a corpus-derived resource.
DEFAULT_STOP_WORDS = frozenset(
    """a about above after again all am an and any are as at be because been
    before being below between both but by did do does doing down during each
    few for from further had has have having he her here hers him his how i
    if in into is it its just me more most my no nor not now of off on once
    only or other our ours out over own rt same she so some such than that
    the their theirs them then there these they this those through to too
    under until up very was we were what when where which while who whom why
    will with you your yours""".split()
)

_NON_ALPHA = re.compile(r"[^a-z\s]+")
_WHITESPACE = re.compile(r"\s+")


class Tokenizer:
    """Cleans raw text into a deduplicated token list."""

    def __init__(
        self,
        stop_words: frozenset[str] | set[str] = DEFAULT_STOP_WORDS,
        min_token_length: int = 2,
    ) -> None:
        self.stop_words = frozenset(stop_words)
        if min_token_length < 1:
            raise ValueError(
                f"min_token_length must be >= 1, got {min_token_length}"
            )
        self.min_token_length = min_token_length

    def tokenize(self, text: str) -> list[str]:
        """Lowercase, strip non-alphabetic chars, split, de-stop, dedupe."""
        cleaned = _NON_ALPHA.sub(" ", text.lower())
        seen: set[str] = set()
        out: list[str] = []
        for token in _WHITESPACE.split(cleaned):
            if len(token) < self.min_token_length:
                continue
            if token in self.stop_words or token in seen:
                continue
            seen.add(token)
            out.append(token)
        return out

    def tokenize_many(self, texts: list[str]) -> list[list[str]]:
        """Tokenize a batch of documents."""
        return [self.tokenize(t) for t in texts]
