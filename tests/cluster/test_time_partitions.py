"""Cluster-level time semantics (PR 10 tentpole, cluster layer).

Every insert *op* advances the cluster logical clock by one tick and
stamps its rows with that tick on every shard, so all nodes share one
timeline.  On top of that single clock:

* ``time_range=(t0, t1)`` on ``query``/``query_batch`` restricts
  answers to rows inserted at ticks in ``[t0, t1)``, pruning whole
  non-overlapping partitions per node (probe counters asserted);
* ``cluster.retire_before(cutoff)`` retires exactly the rows stamped
  before the cutoff — wholly-cold partitions dropped O(1) with zero
  table builds — and feeds the same retirement bookkeeping
  (``retired_ids`` / ``n_retired_items``) as window retirement.

The oracle throughout is a tick map recorded at insert time: filtered
answers must equal unfiltered answers screened by the map.  A spawned
section proves the same semantics over real node processes (timestamps
on the wire, ``time_range`` in query meta, retirement by RPC).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PLSHCluster, PLSHParams
from repro.cluster import spawn_local_cluster
from repro.core.index import PLSHIndex
from repro.parallel import fork_available

PARAMS = PLSHParams(k=6, m=6, radius=0.9, seed=99)
N_NODES = 3
CAPACITY = 400
EPOCHS = 4
ROWS = 45


def _feed_epochs(cluster, vectors, *, roll=False):
    """EPOCHS insert ops (one clock tick each); returns {global_id: tick}.

    With ``roll``, each epoch is sealed into its own static partition on
    every shard (merge + roll), so partitions carry disjoint tick ranges
    and time filters can prune whole partitions.
    """
    tick_of = {}
    for e in range(EPOCHS):
        block = vectors.slice_rows(e * ROWS, (e + 1) * ROWS)
        for g in cluster.insert(block).tolist():
            tick_of[g] = e
        if roll:
            cluster.merge_all()
            for shard in cluster.shards:
                shard.plsh.roll_partition()
    return tick_of


def _ids_in(tick_of, t0, t1):
    return sorted(g for g, t in tick_of.items() if t0 <= t < t1)


def _assert_screened(filtered, unfiltered, tick_of, window):
    """Filtered outcome == unfiltered outcome screened by the tick map
    (id set and per-id distances; merge order across shards may differ
    from the screened order, so compare keyed by id)."""
    t0, t1 = window
    exp = {
        int(g): float(d)
        for g, d in zip(
            unfiltered.result.indices, unfiltered.result.distances
        )
        if t0 <= tick_of[int(g)] < t1
    }
    got = {
        int(g): float(d)
        for g, d in zip(filtered.result.indices, filtered.result.distances)
    }
    assert got == exp


@pytest.fixture
def rolled_cluster(small_vectors):
    cluster = PLSHCluster(
        N_NODES, CAPACITY, small_vectors.n_cols, PARAMS, insert_window=3
    )
    try:
        tick_of = _feed_epochs(cluster, small_vectors, roll=True)
        yield cluster, tick_of
    finally:
        cluster.close()


class TestClusterClock:
    def test_one_tick_per_insert_op(self, small_vectors):
        cluster = PLSHCluster(
            N_NODES, CAPACITY, small_vectors.n_cols, PARAMS, insert_window=3
        )
        try:
            assert cluster.clock == 0
            tick_of = _feed_epochs(cluster, small_vectors)
            assert cluster.clock == EPOCHS
            # Rows really are stamped with their op's tick: a one-tick
            # window returns only that op's ids.
            for e in range(EPOCHS):
                epoch_ids = set(_ids_in(tick_of, e, e + 1))
                assert len(epoch_ids) == ROWS
                out = cluster.query_batch(
                    small_vectors.slice_rows(0, 12), time_range=(e, e + 1)
                )
                for oc in out:
                    assert set(oc.result.indices.tolist()) <= epoch_ids
        finally:
            cluster.close()


class TestTimeFilteredBroadcast:
    WINDOWS = [(0, 1), (1, 3), (2, 4), (0, EPOCHS)]

    def test_matches_time_windowed_oracle(self, rolled_cluster, small_vectors):
        cluster, tick_of = rolled_cluster
        probe = small_vectors.slice_rows(0, 20)
        plain = cluster.query_batch(probe)
        for window in self.WINDOWS:
            filtered = cluster.query_batch(probe, time_range=window)
            for f, u in zip(filtered, plain):
                _assert_screened(f, u, tick_of, window)

    def test_full_range_is_bit_identical_to_unfiltered(
        self, rolled_cluster, small_vectors
    ):
        cluster, _ = rolled_cluster
        probe = small_vectors.slice_rows(0, 20)
        plain = cluster.query_batch(probe)
        full = cluster.query_batch(probe, time_range=(0, cluster.clock))
        for f, u in zip(full, plain):
            np.testing.assert_array_equal(
                f.result.indices, u.result.indices
            )
            np.testing.assert_array_equal(
                f.result.distances, u.result.distances
            )

    def test_future_window_is_empty(self, rolled_cluster, small_vectors):
        cluster, _ = rolled_cluster
        out = cluster.query_batch(
            small_vectors.slice_rows(0, 10), time_range=(100, 200)
        )
        for oc in out:
            assert oc.result.indices.size == 0

    def test_nonoverlapping_partitions_are_pruned(
        self, rolled_cluster, small_vectors
    ):
        """The probe counters across all shards account for exactly the
        partitions whose tick range overlaps the window."""
        cluster, _ = rolled_cluster
        window = (1, 2)
        exp_probed = exp_pruned = 0
        for shard in cluster.shards:
            for part in shard.plsh.static.partitions:
                if part.n_items == 0:
                    continue
                if part.overlaps(*window):
                    exp_probed += 1
                else:
                    exp_pruned += 1
        assert exp_pruned > 0  # the fixture really has cold partitions
        before = [
            (s.plsh.static.n_probed, s.plsh.static.n_pruned)
            for s in cluster.shards
        ]
        cols, vals = small_vectors.row(0)
        cluster.query(cols.astype(np.int64), vals, time_range=window)
        after = [
            (s.plsh.static.n_probed, s.plsh.static.n_pruned)
            for s in cluster.shards
        ]
        probed = sum(a[0] - b[0] for a, b in zip(after, before))
        pruned = sum(a[1] - b[1] for a, b in zip(after, before))
        assert (probed, pruned) == (exp_probed, exp_pruned)


class TestClusterRetireBefore:
    def test_retires_exactly_pre_cutoff_rows(
        self, rolled_cluster, small_vectors
    ):
        cluster, tick_of = rolled_cluster
        total = len(tick_of)
        expected = _ids_in(tick_of, 0, 2)
        retired = cluster.retire_before(2)
        assert retired.tolist() == expected
        assert cluster.n_retirements == 1
        assert cluster.n_retired_items == len(expected)
        assert cluster.retired_ids[-1].tolist() == expected
        # Partitions align with epochs here, so the cutoff drops whole
        # partitions: the rows are gone, not just tombstoned.
        assert cluster.n_items == total - len(expected)
        survivors = set(_ids_in(tick_of, 2, EPOCHS))
        for oc in cluster.query_batch(small_vectors.slice_rows(0, 20)):
            assert set(oc.result.indices.tolist()) <= survivors

    def test_repeat_cutoff_is_noop(self, rolled_cluster):
        cluster, _ = rolled_cluster
        first = cluster.retire_before(2)
        assert first.size > 0
        again = cluster.retire_before(2)
        assert again.size == 0
        assert cluster.n_retirements == 1

    def test_cold_retirement_builds_no_tables(
        self, rolled_cluster, monkeypatch
    ):
        """O(1) drop across the whole cluster: retirement at a partition
        boundary never reads vectors or rebuilds a hash table."""
        cluster, _ = rolled_cluster
        builds = []
        original = PLSHIndex.build

        def counting_build(self, *args, **kwargs):
            builds.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(PLSHIndex, "build", counting_build)
        retired = cluster.retire_before(3)
        assert retired.size > 0
        assert builds == []

    def test_clock_never_trails_the_cutoff(self, rolled_cluster):
        cluster, _ = rolled_cluster
        cutoff = cluster.clock + 5
        cluster.retire_before(cutoff)
        assert cluster.clock == cutoff


@pytest.mark.skipif(
    not fork_available(), reason="spawn_local_cluster requires fork()"
)
class TestSpawnedTimeParity:
    """Same semantics over real node processes: timestamps ride the
    insert wire op, ``time_range`` rides query meta, retirement is an
    RPC — every answer bit-compared against an in-process shadow."""

    def test_spawned_matches_inprocess(self, small_vectors, small_queries):
        dim = small_vectors.n_cols
        _, queries = small_queries
        probe = queries.slice_rows(0, 10)
        shadow = PLSHCluster(N_NODES, CAPACITY, dim, PARAMS, insert_window=3)
        rpc = spawn_local_cluster(
            N_NODES, CAPACITY, dim, PARAMS, insert_window=3, op_timeout=10.0
        )
        try:
            for e in range(EPOCHS):
                block = small_vectors.slice_rows(e * ROWS, (e + 1) * ROWS)
                np.testing.assert_array_equal(
                    shadow.insert(block), rpc.insert(block)
                )
            assert rpc.clock == shadow.clock == EPOCHS
            for window in [(0, 1), (1, 3), (100, 200)]:
                exp = shadow.query_batch(probe, time_range=window)
                got = rpc.query_batch(probe, time_range=window)
                for a, b in zip(exp, got):
                    np.testing.assert_array_equal(
                        a.result.indices, b.result.indices
                    )
                    np.testing.assert_array_equal(
                        a.result.distances, b.result.distances
                    )
            # Retirement parity: same cutoff, same ids, same survivors.
            np.testing.assert_array_equal(
                shadow.retire_before(2), rpc.retire_before(2)
            )
            assert rpc.n_retired_items == shadow.n_retired_items
            exp = shadow.query_batch(probe)
            got = rpc.query_batch(probe)
            for a, b in zip(exp, got):
                np.testing.assert_array_equal(
                    a.result.indices, b.result.indices
                )
        finally:
            rpc.close()
            shadow.close()

    def test_partition_counters_cross_the_wire(self, small_vectors):
        rpc = spawn_local_cluster(
            2, CAPACITY, small_vectors.n_cols, PARAMS,
            insert_window=2, op_timeout=10.0,
        )
        try:
            rpc.insert(small_vectors.slice_rows(0, 80))
            rpc.merge_all()
            rpc.query_batch(
                small_vectors.slice_rows(0, 5), time_range=(0, 1)
            )
            for row in rpc.stats():
                for key in (
                    "n_partitions", "n_static_resident",
                    "n_parts_probed", "n_parts_pruned",
                ):
                    assert key in row
                assert row["n_partitions"] >= 1
        finally:
            rpc.close()
