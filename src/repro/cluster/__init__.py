"""Multi-node PLSH (Sections 4 and 5.3), as an in-process simulation.

The paper runs 100 nodes over Infiniband/MPI; here each node is a real
:class:`repro.streaming.StreamingPLSH` instance living in one process, a
:class:`Coordinator` broadcasts queries and concatenates partial answers,
and a :class:`NetworkModel` charges every message for bytes and latency so
the paper's "communication is <1 % of runtime" claim can be checked.

Partitioning follows the paper's chosen scheme: every node holds *all* L
tables over a shard of the data (scheme 2 of Section 5.3); data is
distributed in arrival order to a rolling window of M insert nodes; when all
nodes are full, the window wraps and the oldest M nodes are retired
wholesale (Figure 1).
"""

from repro.cluster.cluster import PLSHCluster
from repro.cluster.coordinator import Coordinator
from repro.cluster.network import NetworkModel, NetworkStats
from repro.cluster.node import ClusterNode
from repro.cluster.stats import load_imbalance

__all__ = [
    "ClusterNode",
    "Coordinator",
    "NetworkModel",
    "NetworkStats",
    "PLSHCluster",
    "load_imbalance",
]
