"""Micro-batching: coalesce in-flight single queries into kernel blocks.

The vectorized/pipelined batch kernels are 3x+ faster per query than the
single-query pipeline at paper-sized batches, but independent clients
send one query at a time.  The :class:`MicroBatcher` is the piece that
converts *concurrency* into *batch size*: queries arriving while a batch
is being collected join it, and the batch flushes on whichever comes
first —

* **full**: ``max_batch`` queries collected (flush immediately — the
  kernel's sweet spot is reached, waiting longer only adds latency), or
* **timeout**: the oldest query has waited ``max_delay`` seconds (the
  latency budget: under light load a query pays at most ``max_delay``
  of coalescing delay, never an unbounded wait for a full batch).

Up to ``max_concurrent`` batches may be dispatched at once (a semaphore
gates the rest): while one batch runs its broadcast, the next one is
already collecting — queue-based load leveling, with the admission layer
above bounding the total backlog.

The batcher is a pure asyncio component living on the gateway's event
loop; all methods must be called from that loop.  Dispatch itself (the
blocking coordinator broadcast) is the gateway's job — the batcher just
decides *when* a group of pending queries becomes a batch, and records
honest stats about why (``flush_full`` / ``flush_timeout`` /
``flush_forced`` / ``flush_drain`` counts, batch-size totals) so
benchmarks can prove coalescing actually engaged.

The gateway runs **two** instances: one for queries and one for writes
(:class:`PendingWrite` items — the write micro-batcher that coalesces
single-row client inserts into ``insert_many`` critical sections, with
``max_concurrent=1`` so write batches apply strictly in admission
order).  The batcher itself is item-agnostic: anything carrying a
``future`` coalesces the same way.  :meth:`flush_now` is the ``flush``
wire op's hook — dispatch whatever is collecting without waiting out
the latency budget.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Awaitable, Callable

import numpy as np

__all__ = ["BatcherStats", "MicroBatcher", "PendingQuery", "PendingWrite"]


@dataclass
class PendingQuery:
    """One admitted query waiting to be coalesced into a batch."""

    cols: np.ndarray
    vals: np.ndarray
    radius: float | None
    tenant: str
    #: resolved with this query's BroadcastOutcome (or an exception).
    future: asyncio.Future
    enqueued_at: float = 0.0
    #: optional half-open ``[t0, t1)`` filter on the cluster's logical
    #: insert clock; the gateway groups broadcasts by it so mixed-filter
    #: queries coalesced into one batch never cross-contaminate.
    time_range: tuple[int, int] | None = None


@dataclass
class PendingWrite:
    """One admitted write op waiting to be coalesced into a batch.

    ``kind`` is ``"insert"`` (``cols``/``vals`` hold one sparse row;
    resolved with the assigned global ids) or ``"delete"`` (``ids``
    holds the global ids; resolved with the deleted count)."""

    kind: str
    cols: np.ndarray | None
    vals: np.ndarray | None
    ids: np.ndarray | None
    tenant: str
    #: resolved with the op's result (global ids / count) or an exception.
    future: asyncio.Future
    enqueued_at: float = 0.0


@dataclass
class BatcherStats:
    """Why batches flushed and how big they were (coalescing evidence)."""

    n_queries: int = 0
    n_batches: int = 0
    flush_full: int = 0
    flush_timeout: int = 0
    flush_forced: int = 0
    flush_drain: int = 0
    batch_size_sum: int = 0
    batch_size_max: int = 0

    @property
    def mean_batch_size(self) -> float:
        return self.batch_size_sum / self.n_batches if self.n_batches else 0.0

    def as_dict(self) -> dict:
        return {
            "n_queries": self.n_queries,
            "n_batches": self.n_batches,
            "flush_full": self.flush_full,
            "flush_timeout": self.flush_timeout,
            "flush_forced": self.flush_forced,
            "flush_drain": self.flush_drain,
            "mean_batch_size": round(self.mean_batch_size, 3),
            "batch_size_max": self.batch_size_max,
        }


class MicroBatcher:
    """Coalesces submitted queries; flushes on full batch or latency budget."""

    def __init__(
        self,
        run_batch: Callable[[list[PendingQuery]], Awaitable[None]],
        *,
        max_batch: int = 256,
        max_delay: float = 0.002,
        max_concurrent: int = 2,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        if max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1, got {max_concurrent}"
            )
        #: async callable executing one batch; must resolve every item's
        #: future and never raise (the gateway wraps errors per query).
        self._run_batch = run_batch
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._pending: list[PendingQuery] = []
        self._timer: asyncio.TimerHandle | None = None
        self._slots = asyncio.Semaphore(max_concurrent)
        self._inflight: set[asyncio.Task] = set()
        self.stats = BatcherStats()

    @property
    def n_pending(self) -> int:
        """Queries collected but not yet handed to a dispatch task."""
        return len(self._pending)

    def submit(self, item: PendingQuery) -> None:
        """Add one admitted query; may trigger an immediate full-flush."""
        self._pending.append(item)
        self.stats.n_queries += 1
        if len(self._pending) >= self.max_batch:
            self._flush("full")
        elif self._timer is None:
            # The budget clock starts with the batch's FIRST query: it is
            # the oldest query's wait that is bounded, not the newest's.
            loop = asyncio.get_running_loop()
            self._timer = loop.call_later(self.max_delay, self._on_timer)

    def _on_timer(self) -> None:
        self._timer = None
        if self._pending:
            self._flush("timeout")

    def _flush(self, cause: str) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch, self._pending = self._pending, []
        self.stats.n_batches += 1
        self.stats.batch_size_sum += len(batch)
        self.stats.batch_size_max = max(self.stats.batch_size_max, len(batch))
        if cause == "full":
            self.stats.flush_full += 1
        elif cause == "timeout":
            self.stats.flush_timeout += 1
        elif cause == "forced":
            self.stats.flush_forced += 1
        else:
            self.stats.flush_drain += 1
        task = asyncio.get_running_loop().create_task(self._dispatch(batch))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _dispatch(self, batch: list[PendingQuery]) -> None:
        async with self._slots:
            await self._run_batch(batch)

    def flush_now(self) -> None:
        """Dispatch the collecting batch immediately (the ``flush`` wire
        op): don't wait out the latency budget.  No-op when nothing is
        pending."""
        if self._pending:
            self._flush("forced")

    async def wait_idle(self) -> None:
        """Wait until every already-dispatched batch has completed.  Does
        NOT flush — pair with :meth:`flush_now` for a write barrier."""
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    async def drain(self) -> None:
        """Flush whatever is collected and wait for every in-flight batch
        (clean-shutdown path: no admitted query is ever dropped)."""
        if self._pending:
            self._flush("drain")
        await self.wait_idle()
