"""Per-node health tracking: state machine, circuit breaker, heartbeat.

The paper's 100-node deployment assumes a healthy fabric; a real serving
cluster must keep answering when nodes crash, hang, or flake.  This module
is the bookkeeping half of that story (the request path in
:mod:`repro.cluster.client` and the failover policy in
:mod:`repro.cluster.replication` consume it):

* :class:`NodeHealth` — one node's health record.  Two coupled views over
  the same consecutive-failure counter:

  - a **state machine** ``UP -> SUSPECT -> DOWN`` (``UP`` after any
    success, ``SUSPECT`` after the first failure, ``DOWN`` once
    ``down_after`` consecutive failures accumulate) that the broadcast
    path consults — ``DOWN`` nodes are skipped instead of paying a
    request deadline per broadcast;
  - a **circuit breaker** ``CLOSED -> OPEN -> HALF_OPEN`` that gates the
    request path: it trips ``OPEN`` together with ``DOWN``, fails fast
    while open (:class:`CircuitOpenError`), and after ``cooldown``
    seconds admits exactly one *probe* (``HALF_OPEN``) whose outcome
    closes or re-opens it.

  A deadline expiry is recorded with full weight (``record_failure(weight=
  down_after)``): a node that blew a request deadline is hung until proven
  otherwise, and re-probing it costs a whole deadline, so the breaker
  trips immediately instead of letting every broadcast pay the timeout.

* :class:`HealthMonitor` — the background heartbeat: a
  :class:`repro.parallel.BackgroundTask` daemon thread that periodically
  calls each handle's ``probe()`` (a ping with a short deadline, allowed
  to half-open an open breaker).  Recovery is the monitor's job by
  design: the broadcast path only ever uses ``CLOSED`` nodes and never
  probes, so a flapping node can't inject its reconnect latency into
  query fan-out.  While a monitor runs, the process-wide
  ``BackgroundTask.any_active()`` fork gate holds, so in-process fork
  pools degrade to threads — the conservative default, since fork()ing
  around a thread blocked in socket I/O is exactly the hazard the gate
  exists for (node *server* processes own their pools and are
  unaffected).

* :func:`backoff_delays` — the shared retry schedule: exponential
  backoff with uniform jitter, used by the client's idempotent-op retry
  loop.
"""

from __future__ import annotations

import random
import threading
import time
from enum import Enum
from typing import Callable, Iterator, Sequence

__all__ = [
    "HealthState",
    "BreakerState",
    "CircuitOpenError",
    "NodeHealth",
    "HealthMonitor",
    "backoff_delays",
]


class HealthState(str, Enum):
    """Broadcast-facing node availability."""

    UP = "up"
    SUSPECT = "suspect"
    DOWN = "down"


class BreakerState(str, Enum):
    """Request-path circuit breaker position."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitOpenError(ConnectionError):
    """Request refused locally: the node's circuit breaker is open."""


class NodeHealth:
    """One node's health record (thread-safe: broadcast threads and the
    heartbeat thread both report outcomes).

    ``down_after`` is both the SUSPECT->DOWN threshold and the breaker
    trip threshold — the two views move together by construction.
    """

    def __init__(
        self,
        *,
        down_after: int = 3,
        cooldown: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if down_after < 1:
            raise ValueError(f"down_after must be >= 1, got {down_after}")
        self.down_after = int(down_after)
        self.cooldown = float(cooldown)
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._probing = False
        self._opened_at: float | None = None
        self._last_ok_at: float | None = None
        self._last_error: str | None = None
        self.n_failures_total = 0
        self.n_successes_total = 0
        self.n_trips = 0

    # -- reporting ---------------------------------------------------------

    def record_success(self) -> None:
        """A request (or probe) completed: node is UP, breaker closes."""
        with self._lock:
            self._failures = 0
            self._probing = False
            self._opened_at = None
            self._last_ok_at = self._clock()
            self._last_error = None
            self.n_successes_total += 1

    def record_failure(self, error: str | None = None, *, weight: int = 1) -> None:
        """A request (or probe) failed.  ``weight=down_after`` records a
        deadline expiry: one hung request is enough evidence to trip."""
        with self._lock:
            was_down = self._failures >= self.down_after
            self._failures += max(1, int(weight))
            self._probing = False
            self._last_error = error
            self.n_failures_total += 1
            if self._failures >= self.down_after:
                # (Re)open the breaker; restart the cooldown window.
                self._opened_at = self._clock()
                if not was_down:
                    self.n_trips += 1

    # -- gates -------------------------------------------------------------

    def allow_request(self) -> bool:
        """Request-path gate: only a CLOSED breaker admits broadcasts.
        Probing a DOWN node is the heartbeat's job (see allow_probe)."""
        with self._lock:
            return self._failures < self.down_after

    def allow_probe(self) -> bool:
        """Probe gate: True for a healthy node, or for an OPEN breaker
        whose cooldown elapsed — which atomically claims the single
        HALF_OPEN probe slot.  The caller must follow up with
        ``record_success``/``record_failure`` (or ``abort_probe`` if the
        probe never went on the wire)."""
        with self._lock:
            if self._failures < self.down_after:
                return True
            if self._probing:
                return False  # a probe is already in flight
            if self._opened_at is None:
                self._opened_at = self._clock()  # defensive: open w/o stamp
                return False
            if self._clock() - self._opened_at < self.cooldown:
                return False
            self._probing = True
            return True

    def abort_probe(self) -> None:
        """Release a claimed probe slot without recording an outcome (the
        probe could not be sent, e.g. the connection lock was busy)."""
        with self._lock:
            self._probing = False

    # -- views -------------------------------------------------------------

    @property
    def state(self) -> HealthState:
        with self._lock:
            if self._failures == 0:
                return HealthState.UP
            if self._failures < self.down_after:
                return HealthState.SUSPECT
            return HealthState.DOWN

    @property
    def breaker(self) -> BreakerState:
        with self._lock:
            if self._failures < self.down_after:
                return BreakerState.CLOSED
            return BreakerState.HALF_OPEN if self._probing else BreakerState.OPEN

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._failures

    def snapshot(self) -> dict:
        """One monitoring row (``Coordinator.health()`` aggregates these)."""
        state = self.state  # take the lock once per field group
        breaker = self.breaker
        with self._lock:
            return {
                "state": state.value,
                "breaker": breaker.value,
                "consecutive_failures": self._failures,
                "last_ok_at": self._last_ok_at,
                "last_error": self._last_error,
                "n_failures_total": self.n_failures_total,
                "n_successes_total": self.n_successes_total,
                "n_trips": self.n_trips,
            }


def backoff_delays(
    n: int,
    *,
    base: float = 0.05,
    factor: float = 2.0,
    max_delay: float = 1.0,
    jitter: float = 0.5,
    rng: random.Random | None = None,
) -> Iterator[float]:
    """Yield ``n`` retry delays: ``base * factor**i`` capped at
    ``max_delay``, each stretched by a uniform factor in
    ``[1, 1 + jitter]`` so a fleet of retrying clients decorrelates
    instead of hammering a recovering node in lockstep."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    rand = rng.random if rng is not None else random.random
    for i in range(n):
        delay = min(base * factor**i, max_delay)
        yield delay * (1.0 + jitter * rand())


class HealthMonitor:
    """Background heartbeat over a set of node handles.

    Each tick calls ``handle.probe()`` on every handle that exposes one
    (in-process :class:`ClusterNode` objects don't — they can't fail
    independently of this process).  ``probe`` is the only path that
    half-opens an open breaker, so starting a monitor is what gives a
    cluster *recovery* on top of failover.  Runs on a
    :class:`repro.parallel.BackgroundTask` daemon thread; ``stop()`` is
    idempotent and joins the thread.
    """

    def __init__(self, handles: Sequence, *, interval: float = 0.25) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._handles = [h for h in handles if hasattr(h, "probe")]
        self.interval = float(interval)
        self._stop = threading.Event()
        self._task = None
        self.n_ticks = 0

    @property
    def running(self) -> bool:
        return self._task is not None and not self._task.done()

    def start(self) -> "HealthMonitor":
        from repro.parallel import BackgroundTask

        if self.running:
            return self
        self._stop.clear()
        self._task = BackgroundTask(self._loop)
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            for handle in self._handles:
                if self._stop.is_set():
                    return
                try:
                    handle.probe()
                except Exception:
                    # A probe failure is already recorded in the handle's
                    # health; the monitor itself must never die of one.
                    pass
            self.n_ticks += 1

    def stop(self) -> None:
        """Signal the loop and join the heartbeat thread (idempotent)."""
        self._stop.set()
        task, self._task = self._task, None
        if task is not None:
            task.result()

    def __enter__(self) -> "HealthMonitor":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
