"""Figure 10 — latency vs throughput for batched query processing.

Paper: sweeping the batch size from 10 to 1000 queries, throughput rises
then saturates around 700 queries/second once ~30 queries are processed
together; latency keeps growing linearly with batch size past that point.

This bench sweeps the batch size, measuring batch latency and the implied
throughput with the worker pool sized to the host.  Shape to check:
throughput grows with small batches then flattens; latency grows ~linearly.
"""

from __future__ import annotations

import os

from repro.bench.reporting import format_table, print_section
from repro.bench.runner import measure_median


def test_fig10_latency_throughput(benchmark, twitter, flagship_index):
    engine = flagship_index.engine
    assert engine is not None
    workers = min(4, os.cpu_count() or 1)
    max_batch = twitter.queries.n_rows
    batch_sizes = [b for b in (10, 20, 30, 50, 100, 200, 500, 1000)
                   if b <= max_batch]

    rows = []
    for batch in batch_sizes:
        qs = twitter.queries.slice_rows(0, batch)
        secs = measure_median(
            lambda q=qs: engine.query_batch(q, workers=workers),
            repeats=2,
            warmup=1,
        )
        rows.append([batch, secs * 1e3, batch / secs])

    benchmark.pedantic(
        lambda: engine.query_batch(
            twitter.queries.slice_rows(0, batch_sizes[-1]), workers=workers
        ),
        rounds=2,
        iterations=1,
    )

    print_section(
        f"Figure 10 — latency vs throughput (workers={workers}, "
        f"N={twitter.n:,})",
        format_table(["batch size", "latency ms", "throughput q/s"], rows)
        + "\npaper: throughput saturates ~700 q/s at batch ~30, latency grows",
    )

    # Shape: throughput at the largest batch must be at least that of the
    # smallest batch (saturation, not collapse), and latency must increase
    # with batch size overall.
    assert rows[-1][2] >= rows[0][2] * 0.8
    assert rows[-1][1] > rows[0][1]
