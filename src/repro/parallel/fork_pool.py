"""``ForkPoolExecutor`` — a persistent pool of fork()ed workers.

The closest Python analogue of the paper's multithreaded query engine
(Section 5.2 "Parallelism"): every worker addresses the *same* hash tables
— here via ``fork()`` copy-on-write pages instead of shared-memory threads
— and the pool pays its setup cost once, not once per batch.

Design:

* **Fork once per state.**  The pool forks its workers at construction,
  while the state object (query engine, streaming node, ...) is reachable
  from the parent.  With the ``fork`` start method the child inherits the
  parent's address space, so multi-gigabyte tables transfer for the cost
  of a page-table copy and are shared read-only thereafter.  Nothing is
  pickled at setup time.
* **Stay warm across batches.**  Each worker sits in a receive loop on a
  private pipe.  A ``run(fn, tasks)`` call round-robins the tasks over the
  workers; only the per-batch payload (a query shard, its key slice) and
  the results cross the pipes.  ``fn`` must be a module-level function —
  it is pickled *by reference* (a qualified name), never by value.
* **Owned state, no module globals.**  All worker state hangs off the pool
  instance; two pools in one process cannot interfere, and a pool's
  workers die with it (``close()``, context-manager exit, or GC).

Workers are daemonic, so an abandoned pool cannot outlive the parent.  A
worker that dies mid-batch surfaces as a :class:`RuntimeError` in the
parent; an exception raised by ``fn`` is re-raised in the parent with the
worker's traceback appended.

Platforms without ``fork`` (Windows, some macOS configurations) cannot use
this class at all — :func:`fork_available` reports that, and the factory
in :mod:`repro.parallel` silently substitutes a :class:`ThreadExecutor`.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from typing import Any, Callable, Sequence

from repro.parallel.executor import Executor

__all__ = ["ForkPoolExecutor", "fork_available"]


def fork_available() -> bool:
    """True when the ``fork`` start method exists on this platform."""
    try:
        multiprocessing.get_context("fork")
    except ValueError:
        return False
    return hasattr(os, "fork")


def _worker_loop(conn, state: Any) -> None:
    """Worker entry point: serve (fn, task) requests until told to stop.

    ``state`` arrives through fork inheritance (never pickled); ``fn``
    arrives per request, pickled by reference.  BaseException is caught so
    a failing task degrades to an error reply instead of a dead worker.
    """
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        fn, task = msg
        try:
            reply = (True, fn(state, *task))
        except BaseException:
            reply = (False, traceback.format_exc())
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break  # parent closed the pool mid-batch
    conn.close()


class ForkPoolExecutor(Executor):
    """Persistent fork()ed worker pool (see module docstring)."""

    backend = "fork_pool"

    def __init__(self, state: Any, workers: int) -> None:
        super().__init__(state, workers)
        ctx = multiprocessing.get_context("fork")  # raises off-platform
        self._procs = []
        self._conns = []
        try:
            for _ in range(workers):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=_worker_loop,
                    args=(child_conn, state),
                    daemon=True,
                )
                proc.start()
                child_conn.close()  # parent keeps only its end
                self._procs.append(proc)
                self._conns.append(parent_conn)
        except BaseException:
            self.close()
            raise

    def run(
        self, fn: Callable[..., Any], tasks: Sequence[tuple]
    ) -> list[Any]:
        self._check_open()
        n = len(tasks)
        # Round-robin with at most ONE task in flight per worker: task i
        # goes to worker i % W, and task i + W is sent only after result i
        # is consumed.  Flooding all tasks up front could deadlock once
        # payloads outgrow the pipe buffer (worker blocked sending reply
        # k, parent blocked sending task k+2W into the same full pipe).
        for i, task in enumerate(tasks[: self.workers]):
            self._conns[i % self.workers].send((fn, task))
        results: list[Any] = [None] * n
        for i in range(n):
            conn = self._conns[i % self.workers]
            try:
                ok, payload = conn.recv()
            except (EOFError, OSError):
                proc = self._procs[i % self.workers]
                self.close()
                raise RuntimeError(
                    f"fork-pool worker died (exitcode {proc.exitcode}) "
                    f"while processing task {i}"
                ) from None
            if not ok:
                self.close()
                raise RuntimeError(
                    f"fork-pool worker raised on task {i}:\n{payload}"
                )
            results[i] = payload
            if i + self.workers < n:
                conn.send((fn, tasks[i + self.workers]))
        return results

    def close(self) -> None:
        if self._closed:
            return
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        super().close()

    def __del__(self) -> None:  # best effort: don't leak processes on GC
        try:
            self.close()
        except Exception:
            pass
