"""Wire protocol and transport framing tests (no processes spawned)."""

from __future__ import annotations

import socket
import threading

import numpy as np
import pytest

from repro.cluster import protocol
from repro.cluster.transport import FRAME_HEADER_BYTES, Connection
from repro.sparse.csr import CSRMatrix


class TestMessageEncoding:
    def test_round_trip_arrays_and_meta(self):
        arrays = [
            np.arange(5, dtype=np.int64),
            np.linspace(0, 1, 7, dtype=np.float32),
            np.zeros((2, 3), dtype=np.uint16),
            np.empty(0, dtype=np.int32),
        ]
        meta = {"radius": 0.9, "mode": None, "flag": True, "n": 12}
        body = protocol.encode_message(protocol.OP_QUERY_BATCH, meta, arrays)
        code, out_meta, out_arrays = protocol.decode_message(body)
        assert code == protocol.OP_QUERY_BATCH
        assert out_meta == meta
        assert len(out_arrays) == len(arrays)
        for sent, got in zip(arrays, out_arrays):
            assert got.dtype == sent.dtype
            assert got.shape == sent.shape
            np.testing.assert_array_equal(got, sent)

    def test_empty_message(self):
        code, meta, arrays = protocol.decode_message(
            protocol.encode_message(protocol.OP_PING)
        )
        assert code == protocol.OP_PING
        assert meta == {}
        assert arrays == []

    def test_numpy_scalars_in_meta(self):
        meta = {"n": np.int64(3), "x": np.float32(0.5), "b": np.bool_(True)}
        _, out_meta, _ = protocol.decode_message(
            protocol.encode_message(protocol.OP_STATS, meta)
        )
        assert out_meta == {"n": 3, "x": 0.5, "b": True}

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(TypeError, match="wire format"):
            protocol.encode_message(
                protocol.OP_QUERY, None, [np.zeros(2, dtype=np.complex64)]
            )

    def test_truncated_body_rejected(self):
        body = protocol.encode_message(
            protocol.OP_QUERY, {"radius": 0.9}, [np.arange(100, dtype=np.int64)]
        )
        with pytest.raises(ValueError, match="truncated"):
            protocol.decode_message(body[:-10])

    def test_trailing_garbage_rejected(self):
        body = protocol.encode_message(protocol.OP_PING)
        with pytest.raises(ValueError, match="trailing"):
            protocol.decode_message(body + b"\x00")

    def test_non_contiguous_array_encoded(self):
        arr = np.arange(20, dtype=np.int64)[::2]
        _, _, (out,) = protocol.decode_message(
            protocol.encode_message(protocol.OP_QUERY, None, [arr])
        )
        np.testing.assert_array_equal(out, arr)

    def test_csr_round_trip(self):
        rng = np.random.default_rng(3)
        dense = (rng.random((6, 9)) < 0.3) * rng.random((6, 9))
        matrix = CSRMatrix.from_dense(dense.astype(np.float32))
        body = protocol.encode_message(
            protocol.OP_INSERT_BATCH,
            {"n_cols": matrix.n_cols},
            protocol.csr_to_arrays(matrix),
        )
        _, meta, (indptr, indices, data) = protocol.decode_message(body)
        rebuilt = protocol.arrays_to_csr(indptr, indices, data, meta["n_cols"])
        np.testing.assert_array_equal(rebuilt.to_dense(), matrix.to_dense())


def _socketpair_connections():
    a, b = socket.socketpair()
    return Connection(a), Connection(b)


class TestConnection:
    def test_message_round_trip_over_socketpair(self):
        left, right = _socketpair_connections()
        try:
            payload = [np.arange(1000, dtype=np.float32)]
            sent_bytes = left.send_message(protocol.OP_QUERY, {"radius": 1.0}, payload)
            code, meta, arrays = right.recv_message()
            assert code == protocol.OP_QUERY
            assert meta == {"radius": 1.0}
            np.testing.assert_array_equal(arrays[0], payload[0])
            # Real byte accounting matches on both ends, framing included.
            assert sent_bytes > 4000  # 1000 float32 + headers
            assert left.stats.bytes_sent == sent_bytes
            assert right.stats.bytes_received == sent_bytes
            assert left.stats.n_sent == right.stats.n_received == 1
        finally:
            left.close()
            right.close()

    def test_peer_close_raises_connection_error(self):
        left, right = _socketpair_connections()
        left.close()
        with pytest.raises(ConnectionError):
            right.recv_message()
        assert right.closed

    def test_mid_frame_close_raises(self):
        a, b = socket.socketpair()
        right = Connection(b)
        try:
            # A length prefix promising more bytes than ever arrive.
            a.sendall((1000).to_bytes(FRAME_HEADER_BYTES, "big") + b"xx")
            a.close()
            with pytest.raises(ConnectionError, match="mid-frame"):
                right.recv_message()
        finally:
            right.close()

    def test_insane_frame_length_rejected(self):
        a, b = socket.socketpair()
        right = Connection(b)
        try:
            a.sendall((1 << 60).to_bytes(FRAME_HEADER_BYTES, "big"))
            with pytest.raises(ConnectionError, match="sanity"):
                right.recv_message()
        finally:
            a.close()
            right.close()

    def test_concurrent_request_response(self):
        """One request in flight per connection, but big frames must not
        deadlock the pair (each side writes while the other reads)."""
        left, right = _socketpair_connections()
        big = [np.zeros(1 << 18, dtype=np.float32)]

        def echo():
            code, meta, arrays = right.recv_message()
            right.send_message(code, meta, arrays)

        t = threading.Thread(target=echo)
        t.start()
        try:
            left.send_message(protocol.OP_QUERY_BATCH, {"i": 1}, big)
            code, meta, arrays = left.recv_message()
            assert meta == {"i": 1}
            assert arrays[0].size == big[0].size
        finally:
            t.join(timeout=10)
            left.close()
            right.close()


def test_negative_shape_dimension_rejected():
    """A corrupt frame must fail fast, not walk the cursor backwards."""
    import struct

    good = protocol.encode_message(
        protocol.OP_QUERY, None, [np.arange(4, dtype=np.int64)]
    )
    # The shape int64 sits right after meta (5 + 2 bytes) + dtype/ndim (2).
    offset = good.index(struct.pack(">q", 4))
    bad = good[:offset] + struct.pack(">q", -1) + good[offset + 8 :]
    with pytest.raises(ValueError, match="negative dimension"):
        protocol.decode_message(bad)


class TestServerReconnect:
    def test_new_handle_syncs_n_items_from_server(self, small_vectors):
        """Regression: a handle (re)connected to a populated server must
        mirror the server's item count, or the coordinator skips the node
        and the insert window over-fills it."""
        from repro.cluster.client import RemoteNodeHandle
        from repro.cluster.node import ClusterNode
        from repro.cluster.server import NodeServer
        from repro.core.hashing import AllPairsHasher
        from repro.params import PLSHParams

        params = PLSHParams(k=8, m=6, radius=0.9, seed=11)
        hasher = AllPairsHasher(params, small_vectors.n_cols)
        node = ClusterNode(0, small_vectors.n_cols, params, 100, hasher)
        server = NodeServer(node)
        t = threading.Thread(target=server.serve_forever, daemon=True)
        t.start()
        try:
            first = RemoteNodeHandle(0, server.host, server.port, 100)
            first.insert_batch(small_vectors.slice_rows(0, 30), np.arange(30))
            assert first.n_items == 30
            first.close()  # connection drops; server returns to accept

            second = RemoteNodeHandle(0, server.host, server.port, 100)
            assert second.n_items == 30  # synced on connect
            assert second.free_capacity == 70
            second.shutdown()
        finally:
            t.join(timeout=10)
            assert not t.is_alive()
