"""Figure 5 — PLSH query optimization breakdown (1000 queries).

Paper rungs: no optimizations → +bitvector → +optimized sparse DP →
+sw prefetch → +large pages, cumulative speedup 8.3x.

Rungs here (same pipeline slots):

1. ``no optimizations``   — tree/hash *set* dedup + naive per-candidate
   index-intersection dots (the paper's STL-set baseline).
2. ``+bitvector``         — histogram/bitvector dedup (Section 5.2.1),
   paper-literal: mark, *full-vector* scan, clear.
3. ``+optimized sparse DP`` — dense query lookup vector for O(1)
   per-term matches (Section 5.2.3), still per-candidate.
4. ``+sw prefetch``       — batched gather + one vectorized reduction over
   all candidates (latency hiding analogue, Section 5.2.2).
5. ``+large pages``       — persistent preallocated query buffer / dedup
   mask (one large allocation instead of per-query churn).
6. ``+touched-range dedup`` — scan only the ``[min, max]`` collision range
   instead of the whole bitvector: O(collisions + range), the production
   per-query configuration.
7. ``+batch kernel``      — the vectorized whole-batch pipeline
   (``mode="vectorized"``): Q1-Q4 in a constant number of numpy calls, the
   reproduction's rung above the paper's per-query optimizations.

Rungs 1-6 run the per-query pipeline (``mode="loop"``) so the engine
options actually select the code path being ablated.

Shape to check: monotone decrease; steps 3-4 dominate (they vectorize the
distance computation, which is where the paper's traffic lives).
"""

from __future__ import annotations

import os

from repro.bench.reporting import format_table, print_section
from repro.bench.runner import measure, measure_median
from repro.core.query import QueryEngine


RUNGS = [
    ("no optimizations", dict(dedup="set", dots="naive", reuse_buffers=False)),
    ("+bitvector", dict(dedup="bitvector_fullscan", dots="naive", reuse_buffers=False)),
    ("+optimized sparse DP", dict(dedup="bitvector_fullscan", dots="lookup", reuse_buffers=False)),
    ("+sw prefetch", dict(dedup="bitvector_fullscan", dots="batched", reuse_buffers=False)),
    ("+large pages", dict(dedup="bitvector_fullscan", dots="batched", reuse_buffers=True)),
    ("+touched-range dedup", dict(dedup="bitvector", dots="batched", reuse_buffers=True)),
]


def test_fig5_query_breakdown(benchmark, twitter, flagship_index, scale):
    n_queries = int(os.environ.get("PLSH_BENCH_FIG5_QUERIES", "100"))
    queries = twitter.queries.slice_rows(
        0, min(n_queries, twitter.queries.n_rows)
    )

    times = []
    reference = None
    for label, options in RUNGS:
        engine = QueryEngine(
            flagship_index.tables,
            flagship_index.data,
            flagship_index.hasher,
            flagship_index.params,
            **options,
        )
        results, _ = measure(lambda e=engine: e.query_batch(queries, mode="loop"))
        secs = measure_median(
            lambda e=engine: e.query_batch(queries, mode="loop"),
            repeats=2, warmup=0,
        )
        times.append((label, secs))
        sets = [frozenset(r.indices.tolist()) for r in results]
        if reference is None:
            reference = sets
        else:
            assert sets == reference, f"rung {label!r} changed the answers"

    # Rung 7: the vectorized batch kernel on the production engine.
    vec_engine = flagship_index.engine
    assert vec_engine is not None
    vec_results, _ = measure(
        lambda: vec_engine.query_batch(queries, mode="vectorized")
    )
    vec_secs = measure_median(
        lambda: vec_engine.query_batch(queries, mode="vectorized"),
        repeats=2, warmup=0,
    )
    times.append(("+batch kernel", vec_secs))
    assert [frozenset(r.indices.tolist()) for r in vec_results] == reference, (
        "vectorized batch kernel changed the answers"
    )

    # Production configuration timed by pytest-benchmark.
    engine = flagship_index.engine
    assert engine is not None
    benchmark.pedantic(
        lambda: engine.query_batch(queries), rounds=3, iterations=1
    )

    base = times[0][1]
    rows = [
        [label, secs * 1e3, secs / queries.n_rows * 1e3, base / secs]
        for label, secs in times
    ]
    print_section(
        f"Figure 5 — query breakdown ({queries.n_rows} queries, "
        f"N={twitter.n:,})",
        format_table(
            ["rung", "total ms", "ms/query", "cumulative speedup"], rows
        )
        + "\npaper: cumulative speedup 8.3x at the final rung",
    )

    secs = [t[1] for t in times]
    # Timing-shape assertions are meaningful only when the rungs are slow
    # enough to dominate scheduler/measurement noise; at tiny smoke scales
    # (whole rungs in single-digit milliseconds) the run checks mechanics
    # and answer-identity only — the same gating fig11 applies to its
    # ratio bounds.
    if secs[0] >= 50e-3:
        assert secs[-1] < secs[0] / 3.0, "final rung must be >3x the baseline"
        # Each rung must not regress beyond measurement noise (the
        # batched-dot rung carries most of the win; earlier rungs may be
        # modest in Python).
        for prev, cur in zip(secs, secs[1:]):
            assert cur <= prev * 1.25
