"""``StreamingPLSH`` — one node's full streaming stack (Sections 4 & 6).

A node owns a static :class:`PLSHIndex`, a :class:`DeltaTable`, and a
:class:`DeletionFilter`.  Inserts append to the delta; when the delta
reaches ``eta x capacity`` it is merged into the static structure.
Queries run against both structures and the answers are combined;
candidates from either side are screened against the deletion bitvector
before the distance computation.

**Non-blocking merges.**  The paper's headline scenario is *concurrent*
serving — the firehose keeps inserting and queries keep flowing while
delta→static merges happen underneath (Figure 11).  The merge is
therefore split into two phases:

* :meth:`begin_merge` *freezes* the current delta (a fresh, empty delta
  takes over for new inserts) and launches the expensive table build —
  :func:`repro.streaming.merge.prepare_merge` over the frozen
  ``(static, delta)`` snapshot — on a background
  :class:`~repro.parallel.background.BackgroundTask`.  The call returns
  immediately; the node keeps answering queries against
  ``static + frozen delta + fresh delta``.
* :meth:`commit_merge` is the short critical section: join the build,
  swap the prepared index in as the new static, drop the frozen delta,
  and invalidate the worker pools.  Deletions need no replay — the
  bitvector is keyed by node-local ids, which are stable under merge, so
  tombstones set mid-build screen candidates of the new static the
  instant it lands.

The overlapped path returns query answers **bit-identical** to the
synchronous one (:meth:`merge_now`): LSH candidate sets depend only on
the rows and their cached hash values, not on which structure holds
them, and the ``static → frozen → fresh`` concatenation preserves the
ascending local-id order the merged layout produces.  The paper's
"insert visible by the next query" guarantee holds throughout: inserts
go to the live fresh delta, which every query consults.

``overlap_merges=True`` makes ``auto_merge`` use the overlapped pipeline
(inserts trigger ``begin_merge`` and opportunistically commit finished
builds; a second threshold crossing while a merge is in flight drains it
first — at most one merge is ever in flight).  The default remains the
blocking merge, the reproduction's reference behavior.

Local id space: static rows occupy ``[0, n_static)``; frozen-delta row
``f`` is addressed as ``n_static + f`` and fresh-delta row ``d`` as
``n_static + n_frozen + d``.  A merge folds the frozen rows into the
static range in insertion order, so local ids are *stable under merge* —
a property the cluster's global-id mapping and the tests rely on.

Worker-pool lifecycle: a fork pool snapshots the node copy-on-write, so
any *visible* mutation (insert/commit/delete/retire) invalidates the
cached executors and the next parallel batch re-forks.  ``begin_merge``
deliberately does **not** invalidate: a pre-begin snapshot still holds
the same rows under the old ``static + delta`` layout and answers
bit-identically, so pools stay warm across merge *starts* and only pay
the re-fork when the new static actually lands at commit.
"""

from __future__ import annotations

import numpy as np

from repro.core.candidates import mask_segments, unique_segments
from repro.core.distance import angular_distance
from repro.core.hashing import AllPairsHasher
from repro.core.index import PLSHIndex
from repro.core.query import QueryResult
from repro.parallel import (
    BackgroundTask,
    ExecutorCache,
    default_workers,
    resolve_backend,
    shard_bounds,
)
from repro.params import PLSHParams
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import densify_query, row_dots_dense, row_dots_dense_batch
from repro.streaming.deletion import DeletionFilter
from repro.streaming.delta import DeltaTable
from repro.streaming.merge import merge_into_static, prepare_merge
from repro.utils.timing import StageTimes

__all__ = ["StreamingPLSH", "CapacityError"]


class CapacityError(RuntimeError):
    """Raised when an insert would exceed the node's capacity."""


class StreamingPLSH:
    """A capacity-bounded streaming PLSH node."""

    def __init__(
        self,
        dim: int,
        params: PLSHParams,
        capacity: int,
        *,
        delta_fraction: float = 0.1,
        auto_merge: bool = True,
        overlap_merges: bool = False,
        hasher: AllPairsHasher | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0.0 < delta_fraction <= 1.0:
            raise ValueError(
                f"delta_fraction must be in (0, 1], got {delta_fraction}"
            )
        self.dim = dim
        self.params = params
        self.capacity = capacity
        self.delta_fraction = delta_fraction
        self.auto_merge = auto_merge
        self.overlap_merges = overlap_merges
        self.hasher = hasher if hasher is not None else AllPairsHasher(params, dim)
        self.static = PLSHIndex(dim, params, hasher=self.hasher)
        self.static.build(CSRMatrix.empty(dim))
        self.delta = DeltaTable(dim, params, self.hasher)
        self.deletions = DeletionFilter(capacity)
        self.n_merges = 0
        self.times = StageTimes()
        #: the delta snapshot a pending merge is folding in (None when no
        #: merge is in flight); queried between begin and commit.
        self._frozen: DeltaTable | None = None
        #: the background build of the pending merge (None once joined).
        self._merge_task: BackgroundTask | None = None
        #: persistent executors for parallel batch queries.  A fork pool
        #: snapshots the node copy-on-write, so any visible mutation
        #: (insert/commit/delete/retire) invalidates the cache and the next
        #: parallel batch re-forks; between mutations — the read-heavy
        #: common case — pools stay warm across batches.
        self._executors = ExecutorCache(self)

    # -- executor lifecycle --------------------------------------------------

    def _executor(self, workers: int, backend: str | None):
        # fork()ing a NEW worker pool while any merge-builder thread may
        # be mid numpy/BLAS call is the classic multithreaded-fork
        # deadlock: the child inherits allocator/BLAS locks held by a
        # thread that does not exist in the child.  The hazard is
        # process-wide (a *sibling* node's build makes this node's fork
        # unsafe too), so while any background build runs, new executor
        # requests get the in-process thread backend instead
        # (bit-identical results; invalidated at commit like any pool).
        # Pools forked *before* any build started stay valid — every
        # fork pool is created through this guard or the make_executor
        # backstop, so no builder thread existed at its fork time — and
        # are served from the cache untouched.
        if (
            workers > 1
            and BackgroundTask.any_active()
            and resolve_backend(backend) == "fork_pool"
        ):
            warm = self._executors.peek(workers, backend)
            if warm is not None:
                return warm  # forked while no build was running — safe
            backend = "thread"
        return self._executors.get(workers, backend)

    def _invalidate_executors(self) -> None:
        """Drop pooled workers whose copy-on-write snapshot went stale."""
        self._executors.close()

    def prepare_workers(
        self, workers: int | None = None, backend: str | None = None
    ) -> None:
        """Pre-create the pool :meth:`query_batch` would use (no-op for
        ``workers <= 1``).  Callers that will invoke ``query_batch`` from a
        worker thread (the coordinator's concurrent broadcast) warm pools
        here, serially, so no fork() ever happens while sibling threads
        run numpy kernels — the same multithreaded-fork hazard
        :meth:`_executor` guards against for merge builders."""
        if workers is None:
            workers = default_workers()
        if workers > 1:
            self._executor(workers, backend)

    def close(self) -> None:
        """Release persistent worker pools (idempotent); also closes the
        static engine's pools.  Nodes queried only with ``workers == 1``
        hold no pools and need no close.  A merge in flight is left alone
        (its daemon builder finishes in the background and the result can
        still be committed); call :meth:`commit_merge` or :meth:`retire`
        first to settle it."""
        self._invalidate_executors()
        if self.static.engine is not None:
            self.static.engine.close()

    def __enter__(self) -> "StreamingPLSH":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- sizes -------------------------------------------------------------

    @property
    def n_static(self) -> int:
        return self.static.n_items

    @property
    def n_frozen(self) -> int:
        """Rows in the frozen delta a pending merge is folding in."""
        return 0 if self._frozen is None else len(self._frozen)

    @property
    def n_delta(self) -> int:
        """Rows in the live (fresh) delta — the merge-threshold quantity."""
        return len(self.delta)

    @property
    def n_total(self) -> int:
        return self.n_static + self.n_frozen + self.n_delta

    @property
    def n_live(self) -> int:
        return self.n_total - self.deletions.n_deleted

    @property
    def is_full(self) -> bool:
        return self.n_total >= self.capacity

    @property
    def delta_threshold(self) -> int:
        """Delta size that triggers a merge: ``eta * capacity``."""
        return max(1, int(self.delta_fraction * self.capacity))

    # -- merge lifecycle -----------------------------------------------------

    @property
    def merge_in_flight(self) -> bool:
        """True between :meth:`begin_merge` and :meth:`commit_merge`."""
        return self._frozen is not None

    @property
    def merge_ready(self) -> bool:
        """True when a pending merge's background build has settled — a
        commit no longer has to wait on the builder thread.  (If the
        build *failed*, only a blocking ``commit_merge(wait=True)`` will
        land it, by rebuilding synchronously; polls keep returning
        False.)"""
        return self._frozen is not None and (
            self._merge_task is None or self._merge_task.done()
        )

    def begin_merge(self) -> bool:
        """Freeze the delta and start building the merged static off-path.

        Returns True if a merge is (now) in flight, False if there was
        nothing to merge.  The call itself is cheap: the current delta
        becomes the frozen snapshot, a fresh delta takes over for new
        inserts, and the expensive table construction runs on a background
        thread.  Queries keep serving ``static + frozen + fresh``
        throughout; worker pools stay warm (see the module docstring —
        invalidation happens at commit, when answers actually change
        layout).
        """
        if self._frozen is not None:
            return True
        if self.n_delta == 0:
            return False
        self._frozen = self.delta
        self.delta = DeltaTable(self.dim, self.params, self.hasher)
        # The build reads only the frozen snapshot + the current static,
        # both immutable while the merge is in flight (inserts go to the
        # fresh delta; deletions touch only the bitvector).
        self._merge_task = BackgroundTask(
            prepare_merge, self.static, self._frozen
        )
        return True

    def commit_merge(self, *, wait: bool = True) -> bool:
        """Swap a pending merge's prepared index in (the critical section).

        Returns True if a merge was committed.  ``wait=False`` turns the
        call into an opportunistic poll with a hard contract: it never
        blocks and never raises a background error — it commits only if
        the build already finished successfully, otherwise returns False
        immediately (the hook the insert path uses).  With ``wait=True``
        the call drains the build first — this is where merge
        backpressure lands when the fresh delta fills faster than builds
        complete, and also where a *failed* background build is recovered:
        the merge is rebuilt synchronously on the caller, so frozen rows
        are never stranded and build errors only surface on the explicit
        drain path (re-raised if the rebuild fails the same way).

        Deletions issued mid-build need no replay: the bitvector is keyed
        by node-local ids, which the merge preserves, and it is consulted
        at query time — so tombstones screen the new static immediately.
        """
        frozen = self._frozen
        if frozen is None:
            return False
        task = self._merge_task
        if not wait and (task is None or not task.done()):
            # Still building — or an earlier build failed (task consumed)
            # and recovery needs a blocking commit.  Polls never wait,
            # never rebuild.
            return False
        prepared = None
        if task is not None:
            if wait:
                task.wait()
            try:
                prepared = task.result()
            except Exception:
                if not wait:
                    return False  # poll: keep serving the frozen rows
                prepared = None  # blocking recovery rebuilds below
            self._merge_task = None
        with self.times.stage("merge_commit"):
            if prepared is None:
                # Recovery path (failed or already-consumed build):
                # rebuild synchronously so the frozen rows are never
                # stranded; a deterministic failure re-raises here, on
                # the blocking drain path where it belongs.  The rebuild
                # counts under "merge_commit" only — it ran on the
                # serving path, not the background thread.
                prepared = prepare_merge(self.static, frozen)
            else:
                self.times.add("merge_build", prepared.build_seconds)
            old = self.static
            if prepared.index.n_items != old.n_items + len(frozen):
                raise AssertionError(
                    "prepared merge is stale: "
                    f"{prepared.index.n_items} rows != "
                    f"{old.n_items} static + {len(frozen)} frozen"
                )
            self.static = prepared.index
            self._frozen = None
            self.n_merges += 1
        self._invalidate_executors()
        if old.engine is not None and old is not self.static:
            old.engine.close()
        return True

    def merge_now(self) -> None:
        """Merge synchronously: drain any pending merge, then fold the
        live delta into the static structure on the calling thread."""
        self.commit_merge(wait=True)
        if self.n_delta == 0:
            return
        with self.times.stage("merge"):
            old = self.static
            self.static = merge_into_static(old, self.delta)
            self.delta.clear()
            self.n_merges += 1
        self._invalidate_executors()
        if old.engine is not None and old is not self.static:
            old.engine.close()

    def _abandon_merge(self) -> None:
        """Discard a pending merge (retirement): join the builder so its
        result cannot land later, then drop the frozen snapshot."""
        task = self._merge_task
        self._merge_task = None
        if task is not None:
            task.wait()
        self._frozen = None

    # -- updates ------------------------------------------------------------

    def insert_batch(self, vectors: CSRMatrix) -> np.ndarray:
        """Insert rows; returns their node-local ids.

        Raises :class:`CapacityError` if the batch does not fit — the
        cluster layer is responsible for advancing the insert window and
        retiring old nodes (Section 6), a node never evicts by itself.

        With ``auto_merge``: crossing the delta threshold triggers a
        blocking :meth:`merge_now`, or — with ``overlap_merges`` — a
        non-blocking :meth:`begin_merge` (draining the previous merge
        first if one is still in flight, so at most one build runs at a
        time).  Finished background builds are also committed here
        opportunistically: the insert invalidates worker pools anyway, so
        the commit rides along for free.
        """
        if self.n_total + vectors.n_rows > self.capacity:
            raise CapacityError(
                f"insert of {vectors.n_rows} rows exceeds capacity "
                f"{self.capacity} (current {self.n_total})"
            )
        if self.overlap_merges:
            self.commit_merge(wait=False)
        with self.times.stage("insert"):
            base = self.n_static + self.n_frozen
            local = self.delta.insert_batch(vectors) + base
        self._invalidate_executors()
        if self.auto_merge and self.n_delta >= self.delta_threshold:
            if self.overlap_merges:
                self.commit_merge(wait=True)
                self.begin_merge()
            else:
                self.merge_now()
        return local

    def delete(self, local_ids: np.ndarray | int) -> int:
        """Tombstone rows by node-local id; returns newly deleted count.

        Safe at any point of the merge lifecycle: the filter is keyed by
        local ids, which are stable under merge, and is screened at query
        time on every structure (static, frozen, fresh)."""
        n = self.deletions.delete(local_ids)
        if n:
            self._invalidate_executors()
        return n

    def retire(self) -> None:
        """Erase the node wholesale (the paper's expiration mechanism)."""
        self._abandon_merge()
        self.close()
        self.static = PLSHIndex(self.dim, self.params, hasher=self.hasher)
        self.static.build(CSRMatrix.empty(self.dim))
        self.delta.clear()
        self.deletions.reset()

    # -- queries -------------------------------------------------------------

    def _delta_views(self) -> list[tuple[DeltaTable, int]]:
        """The delta structures a query must consult, with their local-id
        offsets: the frozen snapshot (mid-merge) before the fresh delta,
        preserving the ascending id order the merged layout produces."""
        views: list[tuple[DeltaTable, int]] = []
        if self._frozen is not None and len(self._frozen):
            views.append((self._frozen, self.n_static))
        if len(self.delta):
            views.append((self.delta, self.n_static + self.n_frozen))
        return views

    def query(
        self,
        q_cols: np.ndarray,
        q_vals: np.ndarray,
        *,
        radius: float | None = None,
    ) -> QueryResult:
        """R-near neighbors across static + frozen + fresh, minus deletions."""
        radius = self.params.radius if radius is None else radius
        q_cols = np.asarray(q_cols, dtype=np.int64)
        q_vals = np.asarray(q_vals, dtype=np.float32)
        keys = self._query_keys(q_cols, q_vals)  # hash once, use everywhere

        with self.times.stage("query_static"):
            exclude = self.deletions.mask(self.n_static) if self.n_static else None
            static_res = (
                self.static.query(
                    q_cols, q_vals, radius=radius, exclude=exclude, keys=keys
                )
                if self.n_static
                else QueryResult(
                    np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32)
                )
            )
        with self.times.stage("query_delta"):
            views = self._delta_views()
            # Densify once; both views (frozen + fresh) share it.
            q_dense = densify_query(q_cols, q_vals, self.dim) if views else None
            delta_parts = [
                self._query_delta(table, offset, q_dense, radius, keys)
                for table, offset in views
            ]
        parts = [static_res, *delta_parts]
        return QueryResult(
            np.concatenate([p.indices for p in parts]),
            np.concatenate([p.distances for p in parts]),
        )

    def query_batch(
        self,
        queries: CSRMatrix,
        *,
        radius: float | None = None,
        mode: str | None = None,
        workers: int | None = None,
        backend: str | None = None,
    ) -> list[QueryResult]:
        """Batch R-near-neighbor queries across static + frozen + fresh.

        ``mode="vectorized"`` (the default) hashes the whole batch *once*
        in the parent and shares the ``(B, L)`` key matrix between the
        static and delta structures; the static side runs the batch kernel
        and each delta side the segmented dedup / blocked-dot pipeline,
        each with a single vectorized deletion-filter screen.
        ``mode="pipelined"`` runs the static side through the
        cache-blocked pipelined kernel (:mod:`repro.core.pipelined`,
        bit-identical to vectorized and faster on memory-bound shards);
        the delta structures are small and keep their segmented pipeline.
        ``mode="loop"`` is the per-query path, kept for ablation (always
        serial).

        ``workers > 1`` shards the batch over the :mod:`repro.parallel`
        layer: each worker answers a contiguous sub-block against *all*
        structures with the same key slice, so the static/frozen/fresh
        split — and therefore every merge boundary — is identical in every
        shard and results are bit-identical to ``workers=1``.  ``backend``
        picks the executor (persistent fork pool on Linux by default,
        threads otherwise); the pool snapshots the node at fork time and
        is re-forked automatically after any insert/commit/delete.
        ``None`` defers to ``PLSH_WORKERS``.  Worker engine counters and
        per-stage times are merged back into the static engine's
        ``QueryStats`` and node times, so Figure 5/11 breakdowns stay real
        under parallelism.
        """
        if mode is None:
            mode = "vectorized"
        if mode == "loop":
            return [
                self.query(*queries.row(r), radius=radius)
                for r in range(queries.n_rows)
            ]
        if mode not in ("vectorized", "pipelined"):
            raise ValueError(
                f"unknown mode {mode!r}; expected 'vectorized', "
                f"'pipelined' or 'loop'"
            )
        radius = self.params.radius if radius is None else radius
        n = queries.n_rows
        if n == 0:
            return []
        if workers is None:
            workers = default_workers()
        # Hash once, use everywhere (static + deltas + every shard share
        # the key matrix).
        u = self.hasher.hash_functions(queries)
        keys = self.hasher.table_keys_batch(u)
        if workers <= 1:
            return self._query_batch_shard(queries, radius, keys, mode=mode)

        bounds = shard_bounds(n, workers)
        tasks = [
            (queries.slice_rows(int(b0), int(b1)), keys[b0:b1], radius, mode)
            for b0, b1 in zip(bounds[:-1], bounds[1:])
        ]
        ex = self._executor(workers, backend)
        parts = ex.run(_node_shard_worker, tasks)
        results: list[QueryResult] = []
        engine = self.static.engine
        for payload, (counters, eng_stages), node_stages in parts:
            results.extend(
                QueryResult(indices, distances)
                for indices, distances in payload
            )
            if engine is not None:
                nq, coll, uniq, match = counters
                engine.stats.n_queries += nq
                engine.stats.n_collisions += coll
                engine.stats.n_unique += uniq
                engine.stats.n_matches += match
                for name, secs in eng_stages.items():
                    engine.stats.stage_times.add(name, secs)
            for name, secs in node_stages.items():
                self.times.add(name, secs)
        return results

    def _query_batch_shard(
        self,
        queries: CSRMatrix,
        radius: float,
        keys: np.ndarray,
        *,
        engine=None,
        times: StageTimes | None = None,
        mode: str = "vectorized",
    ) -> list[QueryResult]:
        """Answer one contiguous sub-block given precomputed keys.

        This is the unit of work the parallel layer distributes: static
        batch kernel + the delta pipelines (frozen, then fresh) + per-query
        concatenation, all against the same key slice.  ``engine`` lets a
        worker substitute a private clone of the static engine (private
        dedup/buffers/stats); ``times`` likewise redirects stage accounting
        to a private ``StageTimes`` the parent merges later.
        """
        n = queries.n_rows
        times = self.times if times is None else times
        empty = QueryResult(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32)
        )
        with times.stage("query_static"):
            if self.n_static:
                if engine is None:
                    engine = self.static.engine
                exclude = self.deletions.mask(self.n_static)
                static_res = engine.query_batch(
                    queries, radius=radius, exclude=exclude, keys=keys,
                    mode=mode, workers=1,
                )
            else:
                static_res = [empty] * n
        with times.stage("query_delta"):
            delta_parts = [
                self._query_delta_batch(table, offset, queries, radius, keys)
                for table, offset in self._delta_views()
            ]
        if not delta_parts:
            return static_res
        out: list[QueryResult] = []
        for b in range(n):
            segs = [static_res[b], *(part[b] for part in delta_parts)]
            out.append(
                QueryResult(
                    np.concatenate([s.indices for s in segs]),
                    np.concatenate([s.distances for s in segs]),
                )
            )
        return out

    def _query_keys(self, q_cols: np.ndarray, q_vals: np.ndarray) -> np.ndarray:
        """Step Q1 for this node: the L table keys of the query."""
        q = CSRMatrix(
            np.asarray([0, q_cols.size], dtype=np.int64),
            q_cols.astype(np.int32),
            q_vals,
            self.dim,
            check=False,
        )
        u_row = self.hasher.hash_functions(q)[0]
        return self.hasher.table_keys_for_query(u_row)

    def _query_delta(
        self,
        table: DeltaTable,
        offset: int,
        q_dense: np.ndarray,
        radius: float,
        keys: np.ndarray,
    ) -> QueryResult:
        """Q2-Q4 against one delta structure (ids offset by ``offset``).

        ``q_dense`` is the densified query, built once by the caller and
        shared across views so a mid-merge query does not pay the
        dim-sized scatter twice."""
        if len(table) == 0:
            return QueryResult(
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32)
            )
        collisions = table.collisions(keys)
        if collisions.size == 0:
            return QueryResult(
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32)
            )
        unique = np.unique(collisions)
        # Deletion screen (this structure's rows live at offset + local).
        live = ~self.deletions.is_deleted(unique + offset)
        unique = unique[live]
        vectors = table.vectors()
        dots = row_dots_dense(vectors, unique, q_dense)
        dists = angular_distance(dots)
        within = dists <= radius
        return QueryResult(unique[within] + offset, dists[within])

    def _query_delta_batch(
        self,
        table: DeltaTable,
        offset: int,
        queries: CSRMatrix,
        radius: float,
        keys: np.ndarray,
    ) -> list[QueryResult]:
        """Q2-Q4 against one delta structure for a whole batch (segmented)."""
        n = queries.n_rows
        empty = QueryResult(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32)
        )
        if len(table) == 0:
            return [empty] * n
        values, raw_offsets = table.collisions_batch(keys)
        if values.size == 0:
            return [empty] * n
        cand, offsets = unique_segments(values, raw_offsets, len(table))
        # Vectorized deletion screen: one bitvector test over every
        # candidate of the batch (rows live at offset + local).
        if cand.size:
            live = ~self.deletions.is_deleted(cand + offset)
            offsets = mask_segments(offsets, live)
            cand = cand[live]
        dots = row_dots_dense_batch(table.vectors(), cand, offsets, queries)
        dists = angular_distance(dots)
        within = dists <= radius
        out_offsets = mask_segments(offsets, within)
        out_ids = cand[within] + offset
        out_dists = dists[within]
        return [
            QueryResult(
                out_ids[out_offsets[b] : out_offsets[b + 1]],
                out_dists[out_offsets[b] : out_offsets[b + 1]],
            )
            for b in range(n)
        ]


def _node_shard_worker(
    node: StreamingPLSH,
    queries: CSRMatrix,
    keys: np.ndarray,
    radius: float,
    mode: str = "vectorized",
):
    """Executor task: answer one shard against all node structures.

    ``node`` is the executor state (the fork()ed copy-on-write snapshot,
    or the live node for in-process backends).  The static side runs on a
    private engine clone and stage times go to a private ``StageTimes``,
    so concurrent shards never contend; both are returned as primitives
    for the parent to merge.
    """
    engine = node.static.engine
    eng = engine._clone() if (node.n_static and engine is not None) else None
    times = StageTimes()
    results = node._query_batch_shard(
        queries, radius, keys, engine=eng, times=times, mode=mode
    )
    if eng is not None:
        s = eng.stats
        counters = (s.n_queries, s.n_collisions, s.n_unique, s.n_matches)
        eng_stages = s.stage_times.as_dict()
    else:
        counters = (0, 0, 0, 0)
        eng_stages = {}
    return (
        [(r.indices, r.distances) for r in results],
        (counters, eng_stages),
        times.as_dict(),
    )
