"""Collision probability theory tests, including empirical validation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashing import AllPairsHasher
from repro.params import PLSHParams
from repro.perfmodel.collisions import (
    collision_probability,
    estimate_collision_stats,
    pair_collision_probability,
    recall_probability,
    sample_pairwise_distances,
)


class TestTheory:
    def test_p_endpoints(self):
        assert collision_probability(0.0) == 1.0
        assert collision_probability(np.pi) == pytest.approx(0.0)

    def test_p_midpoint(self):
        assert collision_probability(np.pi / 2) == pytest.approx(0.5)

    def test_pk_power(self):
        t = 0.9
        assert pair_collision_probability(t, 16) == pytest.approx(
            collision_probability(t) ** 16
        )

    def test_recall_bounds(self):
        for t in (0.1, 0.9, 2.0):
            for k in (4, 8, 16):
                for m in (2, 10, 40):
                    v = float(recall_probability(t, k, m))
                    assert 0.0 <= v <= 1.0

    def test_recall_increases_with_m(self):
        values = [float(recall_probability(0.9, 8, m)) for m in (2, 5, 10, 20, 40)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_recall_decreases_with_k(self):
        values = [float(recall_probability(0.9, k, 20)) for k in (4, 8, 12, 16)]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_recall_decreases_with_distance(self):
        values = [float(recall_probability(t, 8, 20)) for t in (0.1, 0.5, 0.9, 1.5)]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_paper_parameter_pairs(self):
        """The (k, m) pairs of Figure 7 all sit near P'(0.9) ~ 0.75-0.79,
        an observation recorded in EXPERIMENTS.md."""
        values = {
            (12, 21): 0.785,
            (14, 29): 0.772,
            (16, 40): 0.760,
            (18, 55): 0.747,
        }
        for (k, m), expected in values.items():
            assert float(recall_probability(0.9, k, m)) == pytest.approx(
                expected, abs=0.002
            )

    @settings(max_examples=40, deadline=None)
    @given(
        t=st.floats(0.01, 3.1),
        k=st.sampled_from([2, 4, 8, 16]),
        m=st.integers(2, 60),
    )
    def test_recall_is_probability_property(self, t, k, m):
        v = float(recall_probability(t, k, m))
        assert -1e-9 <= v <= 1.0 + 1e-9


class TestEmpiricalAgreement:
    def test_retrieval_rate_matches_p_prime(self, rng):
        """Monte-Carlo check of P': build hashes for controlled-angle pairs
        and count how often >= 2 of the m functions collide."""
        from repro.sparse.csr import CSRMatrix

        dim, k, m, t = 48, 8, 12, 0.7
        params = PLSHParams(k=k, m=m, seed=91)
        trials = 300
        hits = 0
        base = rng.standard_normal(dim)
        base /= np.linalg.norm(base)
        for trial in range(trials):
            hasher = AllPairsHasher(params.with_seed(1000 + trial), dim)
            perp = rng.standard_normal(dim)
            perp -= (perp @ base) * base
            perp /= np.linalg.norm(perp)
            other = np.cos(t) * base + np.sin(t) * perp
            pair = CSRMatrix.from_dense(
                np.vstack([base, other]).astype(np.float32)
            )
            u = hasher.hash_functions(pair)
            if int((u[0] == u[1]).sum()) >= 2:
                hits += 1
        expected = float(recall_probability(t, k, m))
        # 300 Bernoulli trials: std ~ 0.028; allow ~4 sigma.
        assert hits / trials == pytest.approx(expected, abs=0.12)


class TestEstimators:
    def test_distance_sample_shape(self, small_vectors, small_queries):
        _, queries = small_queries
        d = sample_pairwise_distances(
            small_vectors, queries, n_query_sample=10, n_data_sample=50, seed=0
        )
        assert d.shape == (10, 50)
        assert (d >= 0).all() and (d <= np.pi + 1e-6).all()

    def test_estimates_scale_with_n(self, small_vectors, small_queries):
        _, queries = small_queries
        d = sample_pairwise_distances(
            small_vectors, queries, n_query_sample=10, n_data_sample=50, seed=0
        )
        stats = estimate_collision_stats(
            small_vectors, queries, 8, 8, distances=d
        )
        assert stats.n_data == small_vectors.n_rows
        assert stats.expected_unique <= stats.n_data
        assert stats.expected_collisions >= 0

    def test_collisions_exceed_unique_weighted_by_tables(
        self, small_vectors, small_queries
    ):
        """E[#collisions] counts multiplicity, so it is >= E[#unique]."""
        _, queries = small_queries
        d = sample_pairwise_distances(
            small_vectors, queries, n_query_sample=10, n_data_sample=50, seed=0
        )
        stats = estimate_collision_stats(
            small_vectors, queries, 8, 8, distances=d
        )
        assert stats.expected_collisions >= stats.expected_unique * 0.9

    def test_estimator_tracks_measured_counts(self, built_index, small_vectors,
                                              small_queries):
        """Sampled E[#collisions]/E[#unique] must be within a factor ~2 of
        the counters observed on real queries (the paper reports 15-25 %;
        small samples here are noisier)."""
        _, queries = small_queries
        params = built_index.params
        stats = estimate_collision_stats(
            small_vectors, queries, params.k, params.m,
            n_query_sample=queries.n_rows, n_data_sample=500, seed=3,
        )
        engine = built_index.engine
        before_q = engine.stats.n_queries
        before_c = engine.stats.n_collisions
        before_u = engine.stats.n_unique
        for r in range(queries.n_rows):
            engine.query_row(queries, r)
        nq = engine.stats.n_queries - before_q
        measured_c = (engine.stats.n_collisions - before_c) / nq
        measured_u = (engine.stats.n_unique - before_u) / nq
        assert stats.expected_collisions == pytest.approx(measured_c, rel=1.0)
        assert stats.expected_unique == pytest.approx(measured_u, rel=1.0)
