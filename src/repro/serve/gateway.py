"""The asyncio serving gateway: the cluster's front door.

The paper's Section 4 coordinator exists to serve "queries arriving from
different clients", and the batch kernels are 3x+ faster per query at
paper-sized batches — but a client sends one query at a time.  The
:class:`Gateway` closes that gap: it accepts any number of client
connections (JSON-lines protocol, :mod:`repro.serve.protocol`), coalesces
their in-flight single queries into batch-kernel blocks
(:class:`~repro.serve.batcher.MicroBatcher`: flush at the latency budget
or at a full batch, whichever first), broadcasts each block through the
coordinator once, and de-multiplexes the per-query answers back to their
connections — with each query's ``degraded`` / ``missing_shards`` report
attached, so honest serving survives the aggregation.

**Admission control sheds load honestly.**  A query is either admitted
(it WILL be answered — the drain path guarantees it even across
shutdown) or rejected *immediately* with an explicit
``status="rejected"`` response carrying a ``retry_after`` backoff hint;
nothing is ever silently dropped.  Two caps apply, checked before
queueing:

* ``max_pending`` — gateway-wide bound on admitted-but-unanswered
  queries (queue-based load leveling: the backlog is bounded, clients
  are pushed back on, nodes are never buried);
* ``tenant_quota`` — per-tenant bound on in-flight queries, so one
  chatty tenant cannot starve the rest (requests carry an optional
  ``tenant`` field; quota rejections use ``reason="quota"``).

**Threading model.**  The gateway runs its event loop on a dedicated
daemon thread (``start()`` / ``close()`` are called from normal sync
code).  Socket I/O, admission and coalescing live on the loop; the
blocking coordinator broadcast runs on a small dispatch pool
(``max_concurrent_batches`` threads), so up to that many micro-batches
overlap — which is exactly why the coordinator substrate underneath had
to be made thread-safe (per-handle request locks, locked broadcast-pool
management, locked NetworkModel accounting; see
:mod:`repro.cluster.coordinator`).

A stalled or dead node never stalls the gateway: the broadcast layer's
deadlines and circuit breakers convert it into per-query ``degraded``
answers, and the dispatch pool keeps flushing batches meanwhile.

**The write path (PR 9).**  Mutations flow through the same front door
with the same guarantees as reads: ``insert`` / ``delete`` ops share the
queries' admission control (one ``max_pending`` backlog bound, the same
per-tenant quotas, explicit ``rejected`` + ``retry_after`` shedding) and
coalesce in a second :class:`MicroBatcher` — the *write* micro-batcher —
whose batches apply as one :meth:`PLSHCluster.insert_many` critical
section per run of consecutive inserts.  Two deliberate asymmetries
versus the query path:

* write batches dispatch with ``max_concurrent=1``, so writes apply in
  exactly their admission order (queries are order-free; writes are
  not);
* an insert is acknowledged only *after* the cluster call returns —
  the ack is the ordering contract: a query admitted after a write's
  acknowledgment observes that write (read-your-writes).  A query
  admitted before the ack may or may not see it; a ``flush`` op is the
  explicit barrier (force-dispatch + wait for every in-flight write).

Gateway-mediated writes are bit-identical to direct cluster calls: the
JSON wire round-trips float32 exactly, and ``insert_many`` places rows
exactly as sequential ``insert`` calls would — so the same logical op
sequence produces the same global ids, shard placement, and broadcast
answers whether it flows through the gateway or not (asserted in
``tests/serve/test_gateway_writes.py``).  Against a provider with no
``insert`` (a bare coordinator), write ops answer ``status="error"``
(read-only) rather than pretending.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.serve import protocol
from repro.serve.batcher import MicroBatcher, PendingQuery, PendingWrite
from repro.sparse.csr import CSRMatrix

__all__ = ["Gateway"]


class Gateway:
    """Serves a cluster (or bare coordinator) over a TCP front door.

    ``cluster`` is anything with ``query_batch(CSRMatrix, radius=...) ->
    list[BroadcastOutcome]`` — a :class:`~repro.cluster.cluster.PLSHCluster`
    (in-process or spawned) or a bare
    :class:`~repro.cluster.coordinator.Coordinator`.  ``dim`` is the
    vector space width queries are validated against.
    """

    def __init__(
        self,
        cluster,
        dim: int,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 256,
        max_delay: float = 0.002,
        max_concurrent_batches: int = 2,
        max_pending: int = 1024,
        tenant_quota: int | None = None,
        default_radius: float | None = None,
        write_max_batch: int = 64,
        write_max_delay: float | None = None,
    ) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if tenant_quota is not None and tenant_quota < 1:
            raise ValueError(
                f"tenant_quota must be >= 1 or None, got {tenant_quota}"
            )
        self.cluster = cluster
        self.dim = int(dim)
        self.host = host
        self.port = port
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay)
        self.max_concurrent_batches = int(max_concurrent_batches)
        self.max_pending = int(max_pending)
        self.tenant_quota = tenant_quota
        self.default_radius = default_radius
        if write_max_batch < 1:
            raise ValueError(
                f"write_max_batch must be >= 1, got {write_max_batch}"
            )
        self.write_max_batch = int(write_max_batch)
        self.write_max_delay = float(
            max_delay if write_max_delay is None else write_max_delay
        )
        #: writes need a mutable provider; a bare coordinator is read-only.
        self._writable = hasattr(cluster, "insert") and hasattr(
            cluster, "delete"
        )

        self.batcher: MicroBatcher | None = None
        self.write_batcher: MicroBatcher | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._stop_event: asyncio.Event | None = None
        self._server: asyncio.AbstractServer | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._closed = False
        #: set on the loop thread at shutdown: already-admitted queries
        #: drain to completion, new ones get an explicit rejection.
        self._draining = False

        #: admitted-but-unanswered queries, gateway-wide / per tenant
        #: (loop-thread state; admission reads and writes it there only).
        self._pending_total = 0
        self._tenant_pending: dict[str, int] = {}
        self._counters = {
            "admitted": 0,
            "answered": 0,
            "admitted_writes": 0,
            "answered_writes": 0,
            "inserted_rows": 0,
            "deleted_rows": 0,
            "flushes": 0,
            "rejected_overload": 0,
            "rejected_quota": 0,
            "rejected_readonly": 0,
            "malformed": 0,
            "broadcast_errors": 0,
            "write_errors": 0,
            "degraded": 0,
        }
        self._answer_tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()

    # -- lifecycle ---------------------------------------------------------

    def start(self, *, timeout: float = 10.0) -> "Gateway":
        """Bind and serve on a background thread; returns once accepting.

        ``gateway.port`` holds the bound port afterwards (``port=0``
        requests an ephemeral one)."""
        if self._thread is not None:
            raise RuntimeError("gateway already started")
        self._thread = threading.Thread(
            target=self._thread_main, name="plsh-gateway", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise TimeoutError("gateway did not start in time")
        if self._startup_error is not None:
            self._thread.join(timeout=timeout)
            raise self._startup_error
        return self

    def close(self, *, timeout: float = 30.0) -> None:
        """Stop accepting, drain every admitted query, stop the loop.

        Clean shutdown is a *drain*, not an abort: batches still
        collecting are flushed, in-flight broadcasts finish, and every
        admitted query's answer is written before connections close."""
        if self._closed:
            return
        self._closed = True
        if self._thread is None:
            return
        loop = self._loop
        if loop is not None and self._thread.is_alive():
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(self._signal_stop)
        self._thread.join(timeout=timeout)

    def _signal_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    def __enter__(self) -> "Gateway":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._serve_main())
        except BaseException as exc:  # pragma: no cover - defensive
            if not self._started.is_set():
                self._startup_error = exc
                self._started.set()
            else:
                raise
        finally:
            self._started.set()

    async def _serve_main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self.batcher = MicroBatcher(
            self._run_batch,
            max_batch=self.max_batch,
            max_delay=self.max_delay,
            max_concurrent=self.max_concurrent_batches,
        )
        # Writes apply strictly in admission order: one batch in flight.
        self.write_batcher = MicroBatcher(
            self._run_write_batch,
            max_batch=self.write_max_batch,
            max_delay=self.write_max_delay,
            max_concurrent=1,
        )
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_concurrent_batches,
            thread_name_prefix="plsh-gateway-dispatch",
        )
        try:
            self._server = await asyncio.start_server(
                self._handle_conn,
                self.host,
                self.port,
                limit=protocol.MAX_LINE_BYTES,
            )
        except OSError as exc:
            self._startup_error = exc
            self._started.set()
            self._executor.shutdown(wait=False)
            return
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        self._started.set()
        try:
            await self._stop_event.wait()
        finally:
            # Drain: no new admissions -> flush + finish every batch ->
            # write every pending answer -> close client connections.
            self._draining = True
            self._server.close()
            await self._server.wait_closed()
            await self.batcher.drain()
            await self.write_batcher.drain()
            while self._answer_tasks:
                await asyncio.gather(
                    *list(self._answer_tasks), return_exceptions=True
                )
            for writer in list(self._writers):
                writer.close()
            self._executor.shutdown(wait=True)

    # -- connection handling -----------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        # One write lock per connection: answers for pipelined requests
        # resolve out of order and must not interleave on the stream.
        wlock = asyncio.Lock()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(
                        wlock, writer,
                        protocol.error_response(None, "request line too long"),
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = protocol.decode(line)
                except ValueError as exc:
                    self._counters["malformed"] += 1
                    await self._send(
                        wlock, writer, protocol.error_response(None, str(exc))
                    )
                    continue
                op = message.get("op", "query")
                if op == "query":
                    self._admit(message, wlock, writer)
                elif op in ("insert", "delete"):
                    self._admit_write(op, message, wlock, writer)
                elif op == "flush":
                    task = asyncio.get_running_loop().create_task(
                        self._flush_barrier(message.get("id"), wlock, writer)
                    )
                    self._answer_tasks.add(task)
                    task.add_done_callback(self._answer_tasks.discard)
                elif op == "ping":
                    await self._send(
                        wlock, writer,
                        {"id": message.get("id"), "status": "ok", "op": "ping"},
                    )
                elif op == "stats":
                    await self._send(
                        wlock, writer,
                        {
                            "id": message.get("id"),
                            "status": "ok",
                            "stats": self.stats(),
                        },
                    )
                else:
                    self._counters["malformed"] += 1
                    await self._send(
                        wlock, writer,
                        protocol.error_response(
                            message.get("id"), f"unknown op {op!r}"
                        ),
                    )
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._writers.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()

    async def _send(
        self, wlock: asyncio.Lock, writer: asyncio.StreamWriter, message: dict
    ) -> None:
        async with wlock:
            writer.write(protocol.encode(message))
            with contextlib.suppress(ConnectionError):
                await writer.drain()

    # -- admission ---------------------------------------------------------

    def _slot_acquire(self, tenant: str) -> None:
        """Count one admitted request against the backlog + its tenant.
        Loop-thread only; paired with :meth:`_slot_release`."""
        self._pending_total += 1
        self._tenant_pending[tenant] = self._tenant_pending.get(tenant, 0) + 1

    def _slot_release(self, tenant: str) -> None:
        """Release one slot; a tenant's entry is DROPPED at zero so the
        per-tenant dict tracks only live tenants and cannot grow without
        bound as distinct tenants come and go."""
        self._pending_total -= 1
        remaining = self._tenant_pending.get(tenant, 1) - 1
        if remaining > 0:
            self._tenant_pending[tenant] = remaining
        else:
            self._tenant_pending.pop(tenant, None)

    def _try_reject(self, request_id, tenant, wlock, writer) -> bool:
        """Shared admission gate (queries AND writes): shed on drain,
        backlog cap, or tenant quota.  True if the request was rejected
        (a reply is already on its way)."""
        if self._draining:
            self._counters["rejected_overload"] += 1
            self._reply_soon(
                wlock, writer,
                protocol.reject_response(request_id, "shutdown", 1.0),
            )
            return True
        if self._pending_total >= self.max_pending:
            self._counters["rejected_overload"] += 1
            self._reply_soon(
                wlock, writer,
                protocol.reject_response(
                    request_id, "overloaded", self._retry_after()
                ),
            )
            return True
        if (
            self.tenant_quota is not None
            and self._tenant_pending.get(tenant, 0) >= self.tenant_quota
        ):
            self._counters["rejected_quota"] += 1
            self._reply_soon(
                wlock, writer,
                protocol.reject_response(
                    request_id, "quota", self._retry_after()
                ),
            )
            return True
        return False

    def _admit(
        self,
        message: dict,
        wlock: asyncio.Lock,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Admit-or-reject one query, synchronously on the loop (the
        admission decision must see a consistent backlog count)."""
        request_id = message.get("id")
        tenant = str(message.get("tenant", "default"))
        if self._try_reject(request_id, tenant, wlock, writer):
            return
        try:
            cols, vals, radius, time_range = self._parse_query(message)
        except ValueError as exc:
            self._counters["malformed"] += 1
            self._reply_soon(
                wlock, writer, protocol.error_response(request_id, str(exc))
            )
            return
        future = asyncio.get_running_loop().create_future()
        item = PendingQuery(
            cols, vals, radius, tenant, future, time.perf_counter(),
            time_range,
        )
        self._slot_acquire(tenant)
        self._counters["admitted"] += 1
        self.batcher.submit(item)
        task = asyncio.get_running_loop().create_task(
            self._answer(request_id, item, wlock, writer)
        )
        self._answer_tasks.add(task)
        task.add_done_callback(self._answer_tasks.discard)

    def _reply_soon(self, wlock, writer, message: dict) -> None:
        task = asyncio.get_running_loop().create_task(
            self._send(wlock, writer, message)
        )
        self._answer_tasks.add(task)
        task.add_done_callback(self._answer_tasks.discard)

    def _retry_after(self) -> float:
        """Backoff hint for rejected clients: roughly how long the current
        backlog needs to clear at the configured flush capacity (a
        heuristic, clamped to [1ms, 1s] — honest enough to spread
        retries without pretending to be a reservation)."""
        per_round = self.max_batch * max(1, self.max_concurrent_batches)
        rounds = self._pending_total / per_round + 1.0
        return float(min(max(rounds * self.max_delay, 0.001), 1.0))

    def _parse_query(
        self, message: dict
    ) -> tuple[np.ndarray, np.ndarray, float | None, tuple[int, int] | None]:
        cols = message.get("cols")
        vals = message.get("vals")
        if not isinstance(cols, list) or not isinstance(vals, list):
            raise ValueError("query needs 'cols' and 'vals' lists")
        if len(cols) != len(vals):
            raise ValueError(
                f"{len(cols)} cols but {len(vals)} vals"
            )
        try:
            cols_arr = np.asarray(cols, dtype=np.int64)
            vals_arr = np.asarray(vals, dtype=np.float32)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"non-numeric cols/vals: {exc}") from exc
        if cols_arr.size and (
            cols_arr.min() < 0 or cols_arr.max() >= self.dim
        ):
            raise ValueError(
                f"cols out of range [0, {self.dim}) "
                f"(got {int(cols_arr.min())}..{int(cols_arr.max())})"
            )
        radius = message.get("radius", self.default_radius)
        if radius is not None:
            radius = float(radius)
        time_range = message.get("time_range")
        if time_range is not None:
            if (
                not isinstance(time_range, list)
                or len(time_range) != 2
                or not all(isinstance(t, int) for t in time_range)
            ):
                raise ValueError(
                    "time_range must be a [t0, t1] list of two integers"
                )
            time_range = (int(time_range[0]), int(time_range[1]))
        return cols_arr, vals_arr, radius, time_range

    # -- the write path ----------------------------------------------------

    def _admit_write(
        self,
        op: str,
        message: dict,
        wlock: asyncio.Lock,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Admit-or-reject one insert/delete through the SAME gate as
        queries (one backlog bound, same tenant quotas)."""
        request_id = message.get("id")
        tenant = str(message.get("tenant", "default"))
        if not self._writable:
            self._counters["rejected_readonly"] += 1
            self._reply_soon(
                wlock, writer,
                protocol.error_response(
                    request_id,
                    f"provider is read-only: {op!r} needs a cluster, "
                    "not a bare coordinator",
                ),
            )
            return
        if self._try_reject(request_id, tenant, wlock, writer):
            return
        try:
            item = self._parse_write(op, message, tenant)
        except ValueError as exc:
            self._counters["malformed"] += 1
            self._reply_soon(
                wlock, writer, protocol.error_response(request_id, str(exc))
            )
            return
        self._slot_acquire(tenant)
        self._counters["admitted_writes"] += 1
        self.write_batcher.submit(item)
        task = asyncio.get_running_loop().create_task(
            self._answer_write(request_id, item, wlock, writer)
        )
        self._answer_tasks.add(task)
        task.add_done_callback(self._answer_tasks.discard)

    def _parse_write(self, op: str, message: dict, tenant: str) -> PendingWrite:
        future = asyncio.get_running_loop().create_future()
        if op == "insert":
            # Same validation as a query row minus the radius — an insert
            # is a sparse row in the same space queries live in.
            cols, vals, _, _ = self._parse_query(message)
            return PendingWrite(
                "insert", cols, vals, None, tenant, future, time.perf_counter()
            )
        ids = message.get("ids")
        if not isinstance(ids, list) or not ids:
            raise ValueError("delete needs a non-empty 'ids' list")
        try:
            ids_arr = np.asarray(ids, dtype=np.int64)
        except (TypeError, ValueError, OverflowError) as exc:
            raise ValueError(f"non-integer delete ids: {exc}") from exc
        if ids_arr.ndim != 1:
            raise ValueError("delete 'ids' must be a flat list")
        return PendingWrite(
            "delete", None, None, ids_arr, tenant, future, time.perf_counter()
        )

    async def _run_write_batch(self, batch: list[PendingWrite]) -> None:
        """Apply one coalesced write batch on the dispatch pool and resolve
        every op's future.  ``max_concurrent=1`` on the write batcher means
        batches (and therefore acks) happen in admission order."""
        loop = asyncio.get_running_loop()
        try:
            resolved = await loop.run_in_executor(
                self._executor, self._apply_writes, batch
            )
        except Exception as exc:  # pragma: no cover - _apply_writes catches
            resolved = [exc] * len(batch)
        for item, value in zip(batch, resolved):
            if item.future.done():
                continue
            if isinstance(value, BaseException):
                item.future.set_exception(value)
            else:
                item.future.set_result(value)

    def _apply_writes(self, batch: list[PendingWrite]) -> list:
        """Blocking: apply the batch in admission order, fusing each
        maximal run of consecutive inserts into ONE ``insert_many`` call.

        ``insert_many`` replays the exact serial placement walk (same
        global ids, same shard placement, same retirements as one
        ``insert`` per row) while delivering per-shard rows as fused
        ``insert_batch`` calls — so coalescing changes RPC count, never
        answers.  Deletes break the run because they must apply at their
        admitted position.
        """
        out: list = [None] * len(batch)
        i = 0
        while i < len(batch):
            if batch[i].kind == "insert":
                j = i
                while j < len(batch) and batch[j].kind == "insert":
                    j += 1
                run = batch[i:j]
                try:
                    gids = self.cluster.insert_many(
                        [
                            CSRMatrix.from_rows(
                                [(it.cols, it.vals)], self.dim
                            )
                            for it in run
                        ]
                    )
                except Exception as exc:
                    for k in range(i, j):
                        out[k] = exc
                else:
                    for k, g in zip(range(i, j), gids):
                        out[k] = ("insert", g)
                i = j
            else:
                item = batch[i]
                try:
                    n = self.cluster.delete(item.ids)
                except Exception as exc:
                    out[i] = exc
                else:
                    out[i] = ("delete", int(n))
                i += 1
        return out

    async def _answer_write(
        self,
        request_id,
        item: PendingWrite,
        wlock: asyncio.Lock,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            kind, value = await item.future
            self._counters["answered_writes"] += 1
            if kind == "insert":
                self._counters["inserted_rows"] += int(np.asarray(value).size)
                response = protocol.insert_ok_response(request_id, value)
            else:
                self._counters["deleted_rows"] += int(value)
                response = protocol.delete_ok_response(request_id, value)
        except Exception as exc:
            self._counters["write_errors"] += 1
            response = protocol.error_response(
                request_id, f"{type(exc).__name__}: {exc}"
            )
        finally:
            self._slot_release(item.tenant)
        try:
            await self._send(wlock, writer, response)
        except Exception:
            # Client gone; the write is applied and accounted regardless.
            pass

    async def _flush_barrier(
        self, request_id, wlock: asyncio.Lock, writer: asyncio.StreamWriter
    ) -> None:
        """The ``flush`` wire op: force-dispatch the collecting write
        batch, then wait until every in-flight write batch has applied.
        Answering means every write admitted before this flush is durable
        in the cluster (acks for them may still be in transit)."""
        n_waiting = self.write_batcher.n_pending
        self.write_batcher.flush_now()
        await self.write_batcher.wait_idle()
        self._counters["flushes"] += 1
        await self._send(
            wlock, writer, protocol.flush_ok_response(request_id, n_waiting)
        )

    # -- dispatch ----------------------------------------------------------

    async def _run_batch(self, batch: list[PendingQuery]) -> None:
        """Execute one coalesced batch on the dispatch pool and resolve
        every query's future (with its outcome, or the broadcast error)."""
        loop = asyncio.get_running_loop()
        try:
            resolved = await loop.run_in_executor(
                self._executor, self._broadcast, batch
            )
        except Exception as exc:  # pragma: no cover - _broadcast catches
            resolved = [exc] * len(batch)
        for item, value in zip(batch, resolved):
            if item.future.done():
                continue
            if isinstance(value, BaseException):
                item.future.set_exception(value)
            else:
                item.future.set_result(value)

    def _broadcast(self, batch: list[PendingQuery]) -> list:
        """Blocking: one coordinator broadcast per (radius, time_range)
        group.

        Queries in a micro-batch may carry different radii or time
        filters, but one broadcast carries one of each — the batch is
        partitioned into per-group sub-batches (in arrival order within
        each group, so de-multiplexing is positional) and a time-filtered
        query never contaminates an unfiltered one coalesced beside it.
        Runs on a dispatch-pool thread; the coordinator below is
        thread-safe under overlapping calls.
        """
        out: list = [None] * len(batch)
        groups: dict[tuple, list[int]] = {}
        for i, item in enumerate(batch):
            groups.setdefault((item.radius, item.time_range), []).append(i)
        for (radius, time_range), idxs in groups.items():
            queries = CSRMatrix.from_rows(
                [(batch[i].cols, batch[i].vals) for i in idxs], self.dim
            )
            # The kwarg rides along only when a filter is set: providers
            # that predate time filtering keep serving unfiltered load.
            kwargs = {"radius": radius}
            if time_range is not None:
                kwargs["time_range"] = time_range
            try:
                outcomes = self.cluster.query_batch(queries, **kwargs)
            except Exception as exc:
                for i in idxs:
                    out[i] = exc
                continue
            for i, outcome in zip(idxs, outcomes):
                out[i] = outcome
        return out

    async def _answer(
        self,
        request_id,
        item: PendingQuery,
        wlock: asyncio.Lock,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            outcome = await item.future
            if outcome.degraded:
                self._counters["degraded"] += 1
            self._counters["answered"] += 1
            response = protocol.ok_response(request_id, outcome)
        except Exception as exc:
            self._counters["broadcast_errors"] += 1
            response = protocol.error_response(
                request_id, f"{type(exc).__name__}: {exc}"
            )
        finally:
            self._slot_release(item.tenant)
        try:
            await self._send(wlock, writer, response)
        except Exception:
            # The client went away mid-flight; the answer is computed and
            # accounted, the write is moot.
            pass

    # -- monitoring --------------------------------------------------------

    def stats(self) -> dict:
        """Gateway counters + batcher stats (coalescing evidence)."""
        batcher = self.batcher.stats.as_dict() if self.batcher else {}
        write_batcher = (
            self.write_batcher.stats.as_dict() if self.write_batcher else {}
        )
        return {
            "host": self.host,
            "port": self.port,
            "pending": self._pending_total,
            "writable": self._writable,
            **dict(self._counters),
            "batcher": batcher,
            "write_batcher": write_batcher,
            "config": {
                "max_batch": self.max_batch,
                "max_delay": self.max_delay,
                "max_concurrent_batches": self.max_concurrent_batches,
                "max_pending": self.max_pending,
                "tenant_quota": self.tenant_quota,
                "write_max_batch": self.write_max_batch,
                "write_max_delay": self.write_max_delay,
            },
        }
