"""Serving gateway — request coalescing vs the uncoalesced baseline.

The PLSH coordinator exists to serve "queries arriving from different
clients" (paper §4), and the batch kernel is 3x+ faster per query than
the single-query path at paper-sized batches.  This bench measures
whether the gateway's micro-batching actually converts independent
closed-loop clients into that batch advantage:

* **coalesced** — the production config: flush at the 2 ms latency
  budget or a full batch, whichever first;
* **uncoalesced baseline** — the *same* gateway with ``max_batch=1``
  (every query is its own broadcast), same dispatch width, same
  clients — isolating coalescing as the only variable.

Reported per mode: completed-query throughput, client-observed p50/p99,
and the gateway's mean batch size (the coalescing evidence).  The run
asserts a conservative speedup floor — at CI smoke scale the kernels are
small and the win is modest; at paper scale it tracks the batch-kernel
advantage.

A second bench drives **mixed read/write load** (PR 9): the same
closed-loop clients, a fraction of whose requests are single-row
gateway inserts, over a cluster sized so the writes cross window
retirements — measuring write ack latency and throughput next to the
read path they overlap, plus the write micro-batcher's coalescing.

Scale knobs: ``PLSH_BENCH_GATEWAY_CLIENTS`` (default 64),
``PLSH_BENCH_GATEWAY_REQUESTS`` per client (default 15),
``PLSH_BENCH_GATEWAY_CORPUS`` rows indexed (default 20000, capped by the
workload), ``PLSH_BENCH_GATEWAY_MIN_SPEEDUP`` (default 1.2),
``PLSH_BENCH_GATEWAY_WRITE_FRACTION`` (default 0.25).
"""

from __future__ import annotations

import os

from repro.bench.artifacts import record_artifact
from repro.bench.reporting import format_table, print_section
from repro.cluster.cluster import PLSHCluster
from repro.serve import Gateway, run_closed_loop

N_NODES = 2


def _measure(cluster, dim, queries, *, max_batch, max_delay, n_clients,
             requests_per_client):
    with Gateway(
        cluster, dim,
        max_batch=max_batch, max_delay=max_delay,
        max_concurrent_batches=2,
        max_pending=max(1024, 4 * n_clients),
    ) as gw:
        return run_closed_loop(
            gw.host, gw.port, queries,
            n_clients=n_clients, requests_per_client=requests_per_client,
        )


def test_gateway_coalescing_speedup(twitter, scale):
    n_clients = int(os.environ.get("PLSH_BENCH_GATEWAY_CLIENTS", "64"))
    per_client = int(os.environ.get("PLSH_BENCH_GATEWAY_REQUESTS", "15"))
    corpus_rows = min(
        twitter.n, int(os.environ.get("PLSH_BENCH_GATEWAY_CORPUS", "20000"))
    )
    min_speedup = float(
        os.environ.get("PLSH_BENCH_GATEWAY_MIN_SPEEDUP", "1.2")
    )

    dim = twitter.vectors.n_cols
    capacity = -(-corpus_rows // N_NODES)  # fits: no window wrap/retirement
    cluster = PLSHCluster(
        N_NODES, capacity, dim, scale.params(), insert_window=N_NODES
    )
    try:
        cluster.insert(twitter.vectors.slice_rows(0, corpus_rows))
        cluster.merge_all()
        queries = twitter.queries

        # Warmup both paths once (first-touch numpy/socket costs).
        _measure(cluster, dim, queries, max_batch=64, max_delay=0.002,
                 n_clients=4, requests_per_client=2)

        baseline = _measure(
            cluster, dim, queries,
            max_batch=1, max_delay=0.0,
            n_clients=n_clients, requests_per_client=per_client,
        )
        coalesced = _measure(
            cluster, dim, queries,
            max_batch=256, max_delay=0.002,
            n_clients=n_clients, requests_per_client=per_client,
        )
    finally:
        cluster.close()

    speedup = coalesced.qps / max(baseline.qps, 1e-9)
    headers = [
        "mode", "clients", "ok", "rejected", "qps", "p50 ms", "p99 ms",
        "mean batch",
    ]
    rows = [
        ["uncoalesced"] + baseline.row(),
        ["coalesced"] + coalesced.row(),
    ]
    print_section(
        f"serving gateway: coalesced vs uncoalesced "
        f"({corpus_rows} rows, speedup {speedup:.2f}x)",
        format_table(headers, rows),
    )
    record_artifact(
        "serving_gateway",
        "coalescing",
        {
            "corpus_rows": corpus_rows,
            "n_clients": n_clients,
            "requests_per_client": per_client,
            "baseline": {
                "qps": baseline.qps,
                "p50_ms": baseline.p50_ms,
                "p99_ms": baseline.p99_ms,
                "mean_batch_size": baseline.mean_batch_size,
            },
            "coalesced": {
                "qps": coalesced.qps,
                "p50_ms": coalesced.p50_ms,
                "p99_ms": coalesced.p99_ms,
                "mean_batch_size": coalesced.mean_batch_size,
            },
            "speedup": speedup,
        },
    )

    total = n_clients * per_client
    assert baseline.n_ok == total and coalesced.n_ok == total
    assert baseline.n_errors == 0 and coalesced.n_errors == 0
    # Coalescing engaged: real multi-query batches, while the baseline
    # stayed strictly singleton.
    assert coalesced.mean_batch_size > 2.0
    assert baseline.mean_batch_size == 1.0
    assert speedup >= min_speedup, (
        f"coalescing speedup {speedup:.2f}x below floor {min_speedup}x "
        f"(baseline {baseline.qps:.0f} qps, coalesced {coalesced.qps:.0f} qps)"
    )


def test_gateway_mixed_write_load(twitter, scale):
    """Writes through the gateway under concurrent query load.

    Closed-loop clients flip a seeded coin per request between a query
    and a single-row insert.  The cluster is sized so the write stream
    crosses window retirements mid-run — the exact overlap (inserts /
    retirement / broadcasts) the cluster write lock and retirement gate
    exist for.  Conservation is asserted: every acked insert is either
    resident or retired, none lost, none double-applied.
    """
    n_clients = int(os.environ.get("PLSH_BENCH_GATEWAY_CLIENTS", "64"))
    per_client = int(os.environ.get("PLSH_BENCH_GATEWAY_REQUESTS", "15"))
    write_fraction = float(
        os.environ.get("PLSH_BENCH_GATEWAY_WRITE_FRACTION", "0.25")
    )
    dim = twitter.vectors.n_cols

    # Size capacity so the expected insert volume wraps the window at
    # least twice mid-run (retirements overlap serving, by construction).
    expected_inserts = max(1, int(n_clients * per_client * write_fraction))
    base_rows = min(twitter.n, max(512, expected_inserts))
    capacity = max(64, (base_rows + expected_inserts // 2) // N_NODES)
    cluster = PLSHCluster(
        N_NODES, capacity, dim, scale.params(), insert_window=N_NODES
    )
    try:
        cluster.insert(twitter.vectors.slice_rows(0, base_rows))
        pre_items = cluster.n_items
        pool_rows = min(twitter.n, base_rows + 4 * expected_inserts)
        insert_pool = twitter.vectors.slice_rows(base_rows, pool_rows)
        if insert_pool.n_rows == 0:
            # Tiny smoke workloads may index the whole corpus; recycle
            # the query set as insert fodder (placement doesn't care).
            insert_pool = twitter.queries
        with Gateway(
            cluster, dim,
            max_batch=256, max_delay=0.002,
            max_concurrent_batches=2,
            max_pending=max(1024, 4 * n_clients),
        ) as gw:
            report = run_closed_loop(
                gw.host, gw.port, twitter.queries,
                n_clients=n_clients, requests_per_client=per_client,
                write_fraction=write_fraction, insert_pool=insert_pool,
                seed=7,
            )
        post_items = cluster.n_items
        retired = cluster.n_retired_items
        n_retirements = cluster.n_retirements
    finally:
        cluster.close()

    headers = [
        "clients", "ok", "writes", "rejected", "qps", "wps",
        "read p50 ms", "write p50 ms", "write p99 ms", "write batch",
    ]
    rows = [[
        n_clients, report.n_ok, report.n_write_ok, report.n_rejected,
        round(report.qps, 1), round(report.wps, 1),
        round(report.p50_ms, 2), round(report.write_latency_ms(50), 2),
        round(report.write_latency_ms(99), 2),
        round(report.mean_write_batch_size, 1),
    ]]
    print_section(
        f"serving gateway: mixed load ({write_fraction:.0%} writes, "
        f"{n_retirements} retirements mid-run)",
        format_table(headers, rows),
    )
    record_artifact(
        "serving_gateway",
        "mixed_write_load",
        {
            "n_clients": n_clients,
            "requests_per_client": per_client,
            "write_fraction": write_fraction,
            "qps": report.qps,
            "wps": report.wps,
            "read_p50_ms": report.p50_ms,
            "write_p50_ms": report.write_latency_ms(50),
            "write_p99_ms": report.write_latency_ms(99),
            "mean_write_batch_size": report.mean_write_batch_size,
            "n_retirements": n_retirements,
        },
    )

    total = n_clients * per_client
    assert report.n_ok + report.n_write_ok == total
    assert report.n_errors == 0
    assert report.n_write_ok > 0
    # Conservation under concurrent retirement: acked inserts are all
    # accounted for — resident or retired, never lost.
    assert post_items + retired == pre_items + report.n_write_ok
