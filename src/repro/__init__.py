"""PLSH — Parallel Locality-Sensitive Hashing for streaming similarity search.

A from-scratch Python reproduction of Sundaram et al., "Streaming Similarity
Search over one Billion Tweets using Parallel Locality-Sensitive Hashing"
(VLDB 2013).

Quickstart::

    from repro import PLSHParams, PLSHIndex, SyntheticCorpus

    corpus = SyntheticCorpus.generate(100_000, seed=7)
    params = PLSHParams(k=16, m=24, radius=0.9, delta=0.1, seed=7)
    index = PLSHIndex(corpus.vocab_size, params).build(corpus.vectors())
    ids, queries = corpus.query_vectors(10)
    for qid, result in zip(ids, index.query_batch(queries)):
        print(qid, result.top(5).indices)

Batch queries accept ``workers=N`` to shard the vectorized kernel across
cores through the :mod:`repro.parallel` execution layer (a persistent
fork pool on Linux, bit-identical to serial; see that module's docs for
pool lifecycle).

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured reproduction log.
"""

from repro.params import PLSHParams, PAPER_TWITTER_PARAMS
from repro.core.index import PLSHIndex
from repro.core.query import QueryResult, QueryStats
from repro.cluster.cluster import PLSHCluster
from repro.persistence import (
    load_cluster_node,
    load_index,
    load_node,
    save_cluster_node,
    save_index,
    save_node,
)
from repro.sparse.csr import CSRMatrix
from repro.sparse.vectorizer import IDFVectorizer
from repro.streaming.node import StreamingPLSH
from repro.text.corpus import CorpusSpec, SyntheticCorpus, TWITTER_SPEC, WIKIPEDIA_SPEC

__version__ = "1.0.0"

__all__ = [
    "CSRMatrix",
    "CorpusSpec",
    "IDFVectorizer",
    "PAPER_TWITTER_PARAMS",
    "PLSHCluster",
    "PLSHIndex",
    "PLSHParams",
    "QueryResult",
    "QueryStats",
    "StreamingPLSH",
    "SyntheticCorpus",
    "TWITTER_SPEC",
    "WIKIPEDIA_SPEC",
    "__version__",
    "load_index",
    "load_cluster_node",
    "load_node",
    "save_index",
    "save_cluster_node",
    "save_node",
]
