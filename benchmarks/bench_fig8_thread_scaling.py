"""Figure 8 — scaling with threads on a single node.

Paper: 7.2x initialization and 7.8x query speedup at 16 SMT threads on an
8-core Xeon.

This bench sweeps worker counts for construction (thread-parallel per-table
partitioning) and for batch querying with BOTH parallel backends:

* ``thread``  — the paper's literal design (shared tables, per-thread
  bitvectors).  On CPython the GIL serializes the small numpy calls that
  dominate a per-query pipeline, so this column *documents the negative
  result* the reproduction notes predicted: threads do not reproduce the
  paper's query scaling and can regress.
* ``process`` — fork()ed workers sharing the index copy-on-write, the
  closest Python analogue of true multithreading.  This column carries the
  reproduction of the paper's claim, bounded by the host's core count.

Shape to check: the process backend improves (or at least holds) as workers
approach the core count; the thread column is reported for the record.
"""

from __future__ import annotations

import os

from repro import PLSHIndex
from repro.bench.reporting import format_table, print_section
from repro.bench.runner import measure_median


def _worker_counts() -> list[int]:
    n_cpu = os.cpu_count() or 1
    counts = [1, 2, 4, 8, 16]
    return [c for c in counts if c <= max(n_cpu, 2)]


def test_fig8_thread_scaling(benchmark, twitter, scale):
    params = scale.params()
    vectors = twitter.vectors
    # Parallelism only pays once the batch carries real work (the paper
    # amortizes over 1000 queries x ~1.4 ms); draw a paper-sized query set
    # from the corpus.
    n_q = int(os.environ.get("PLSH_BENCH_FIG8_QUERIES", "1000"))
    ids = twitter.corpus.sample_query_ids(n_q, seed=97)
    queries = vectors.gather_rows(ids)

    index = PLSHIndex(vectors.n_cols, params).build(vectors)
    engine = index.engine
    assert engine is not None

    # Serial vectorized batch kernel: the single-core reference every
    # parallel backend has to beat (parallelizing the per-query loop only
    # pays if it outruns simply batching the numpy calls).
    vec_s = measure_median(
        lambda: engine.query_batch(queries, mode="vectorized"),
        repeats=2,
        warmup=1,
    )

    rows = []
    base_init = base_query = None
    for workers in _worker_counts():
        init_s = measure_median(
            lambda w=workers: PLSHIndex(vectors.n_cols, params).build(
                vectors, workers=w
            ),
            repeats=1,
            warmup=0,
        )
        thread_s = measure_median(
            lambda w=workers: engine.query_batch(
                queries, workers=w, mode="loop"
            ),
            repeats=2,
            warmup=1,
        )
        process_s = measure_median(
            lambda w=workers: engine.query_batch(
                queries, workers=w, backend="process", mode="loop"
            ),
            repeats=2,
            warmup=1,
        )
        if base_init is None:
            base_init, base_query = init_s, thread_s
        rows.append(
            [
                workers,
                init_s * 1e3,
                base_init / init_s,
                thread_s * 1e3,
                base_query / thread_s,
                process_s * 1e3,
                base_query / process_s,
            ]
        )

    benchmark.pedantic(
        lambda: engine.query_batch(queries), rounds=3, iterations=1
    )

    base_loop = rows[0][3]
    print_section(
        f"Figure 8 — parallel scaling (host has {os.cpu_count()} cpus; "
        f"N={vectors.n_rows:,}, {queries.n_rows} queries)",
        format_table(
            ["workers", "init ms", "init spd", "thread q ms", "thread spd",
             "process q ms", "process spd"],
            rows,
        )
        + f"\nserial vectorized batch kernel: {vec_s * 1e3:.1f} ms "
        f"({base_loop / (vec_s * 1e3):.1f}x over the serial loop — the "
        f"single-core bar every parallel loop backend must clear)"
        + "\npaper: 7.2x init / 7.8x query at 16 threads on 8 cores"
        + "\nthread column: CPython GIL serializes per-query numpy calls —"
          " the documented negative result; process column: fork-shared"
          " index, the faithful analogue (bounded by host cores)",
    )

    # The process backend must not regress catastrophically.  Its fixed
    # cost is a fork of the parent (page-table copy scales with resident
    # set, which in a full bench session holds several indexes), so on a
    # small shared host the bound is generous; on a many-core machine with
    # paper-sized batches this backend is where the speedup appears.
    base = rows[0][3]
    for row in rows[1:]:
        assert row[5] < base * 2.5, (
            f"process backend at {row[0]} workers regressed: "
            f"{row[5]:.1f} ms vs serial {base:.1f} ms"
        )