"""Table 2 — PLSH vs deterministic exact algorithms.

Paper (10.5 M tweets, 1000 queries, single node):

    Algorithm          #distance computations    runtime
    Exhaustive search  10,579,994                115.35 ms
    Inverted index        847,027.9             > 21.81 ms
    PLSH                  120,345.7                1.42 ms

PLSH ≈ 15x faster than the inverted index and ≈ 81x faster than exhaustive
search at 92 % recall.  This bench regenerates the same three rows (plus the
recall column) at the configured scale; shape to check: PLSH does orders of
magnitude fewer distance computations and wins by a widening factor,
inverted index sits in between.
"""

from __future__ import annotations

import time

from repro.baselines.exhaustive import ExhaustiveSearch
from repro.baselines.inverted_index import InvertedIndex
from repro.bench.reporting import format_table, print_section


def _mean_recall(approx_results, truth_sets) -> float:
    found = total = 0
    for res, truth in zip(approx_results, truth_sets):
        total += len(truth)
        found += len(set(res.indices.tolist()) & truth)
    return found / max(total, 1)


def test_table2_comparison(benchmark, twitter, flagship_index, scale):
    queries = twitter.queries
    n_queries = queries.n_rows
    radius = scale.params().radius

    # --- PLSH (timed by pytest-benchmark; one pass over the query set)
    engine = flagship_index.engine
    assert engine is not None

    def run_plsh():
        return engine.query_batch(queries)

    plsh_results = benchmark.pedantic(run_plsh, rounds=3, iterations=1)
    start = time.perf_counter()
    plsh_results = run_plsh()
    plsh_s = time.perf_counter() - start
    plsh_dc = engine.stats.n_unique / engine.stats.n_queries

    # --- Exhaustive search
    exhaustive = ExhaustiveSearch(twitter.vectors, radius)
    start = time.perf_counter()
    exact_results = exhaustive.query_batch(queries)
    exhaustive_s = time.perf_counter() - start
    truth_sets = [set(r.indices.tolist()) for r in exact_results]
    exhaustive_dc = exhaustive.n_distance_computations / n_queries

    # --- Inverted index (distance-filter time only, as in the paper)
    inverted = InvertedIndex(twitter.vectors, radius)
    inv_results = inverted.query_batch(queries)
    inverted_s = inverted.stage_times["distance_filter"]
    inverted_dc = inverted.n_distance_computations / n_queries

    recall = _mean_recall(plsh_results, truth_sets)
    rows = [
        ["Exhaustive search", int(exhaustive_dc), exhaustive_s / n_queries * 1e3,
         1.0, _mean_recall(exact_results, truth_sets)],
        ["Inverted index", int(inverted_dc), inverted_s / n_queries * 1e3,
         exhaustive_s / max(inverted_s, 1e-12), _mean_recall(inv_results, truth_sets)],
        ["PLSH", int(plsh_dc), plsh_s / n_queries * 1e3,
         exhaustive_s / max(plsh_s, 1e-12), recall],
    ]
    print_section(
        f"Table 2 — PLSH vs exact algorithms "
        f"(N={twitter.n:,}, {n_queries} queries, k={scale.k}, m={scale.m})",
        format_table(
            ["algorithm", "dist comps/query", "ms/query", "speedup vs exhaustive",
             "recall"],
            rows,
        )
        + "\npaper: exhaustive 10.58M comps / 115.35 ms; inverted 847k / >21.8 ms;"
          " PLSH 120.3k / 1.42 ms (15x / 81x, 92% recall)",
    )

    # Shape assertions (the reproduction claim, not absolute numbers):
    assert plsh_dc < inverted_dc < exhaustive_dc
    assert plsh_s < inverted_s < exhaustive_s
    assert recall > 0.5
