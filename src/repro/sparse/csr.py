"""A from-scratch CSR (Compressed Row Storage) matrix on numpy arrays.

This is the paper's storage format for the tweet corpus (Section 5.1.1):
``indptr`` (row boundaries), ``indices`` (vocabulary ids per row) and
``data`` (IDF scores).  Rows are the sparse documents; the matrix is
generally very sparse (≈7.2 non-zeros per 500k-dimensional tweet row).

Only the operations the system needs are implemented — row slicing and
gathering, concatenation, and conversions — with validation on construction
so downstream kernels can assume well-formed inputs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["CSRMatrix", "ranges_to_indices"]


class CSRMatrix:
    """Immutable-ish CSR matrix of shape ``(n_rows, n_cols)``.

    Attributes
    ----------
    indptr : int64 array of length ``n_rows + 1``
    indices : int32 array of length ``nnz`` (column ids, per-row sorted order
        is *not* required but per-row duplicates are rejected by
        :meth:`validate`)
    data : float32 array of length ``nnz``
    """

    __slots__ = ("indptr", "indices", "data", "n_cols")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        n_cols: int,
        *,
        check: bool = True,
    ) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int32)
        self.data = np.ascontiguousarray(data, dtype=np.float32)
        self.n_cols = int(n_cols)
        if check:
            self.validate()

    # -- construction -----------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        rows: Iterable[tuple[Sequence[int], Sequence[float]]],
        n_cols: int,
    ) -> "CSRMatrix":
        """Build from an iterable of ``(column_ids, values)`` pairs."""
        indptr = [0]
        all_cols: list[np.ndarray] = []
        all_vals: list[np.ndarray] = []
        for cols, vals in rows:
            cols = np.asarray(cols, dtype=np.int32)
            vals = np.asarray(vals, dtype=np.float32)
            if cols.shape != vals.shape:
                raise ValueError(
                    f"row has {cols.size} column ids but {vals.size} values"
                )
            all_cols.append(cols)
            all_vals.append(vals)
            indptr.append(indptr[-1] + cols.size)
        indices = (
            np.concatenate(all_cols) if all_cols else np.empty(0, dtype=np.int32)
        )
        data = np.concatenate(all_vals) if all_vals else np.empty(0, dtype=np.float32)
        return cls(np.asarray(indptr, dtype=np.int64), indices, data, n_cols)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        """Build from a 2-D dense array (test/debug helper)."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ValueError(f"expected 2-D array, got shape {dense.shape}")
        rows = []
        for r in range(dense.shape[0]):
            cols = np.nonzero(dense[r])[0]
            rows.append((cols, dense[r, cols]))
        return cls.from_rows(rows, dense.shape[1])

    @classmethod
    def empty(cls, n_cols: int) -> "CSRMatrix":
        """A matrix with zero rows."""
        return cls(
            np.zeros(1, dtype=np.int64),
            np.empty(0, dtype=np.int32),
            np.empty(0, dtype=np.float32),
            n_cols,
        )

    @classmethod
    def vstack(cls, blocks: Sequence["CSRMatrix"]) -> "CSRMatrix":
        """Concatenate matrices row-wise. All blocks must share ``n_cols``."""
        if not blocks:
            raise ValueError("vstack needs at least one block")
        n_cols = blocks[0].n_cols
        for b in blocks:
            if b.n_cols != n_cols:
                raise ValueError(
                    f"column mismatch in vstack: {b.n_cols} != {n_cols}"
                )
        indptrs = [blocks[0].indptr]
        for b in blocks[1:]:
            indptrs.append(b.indptr[1:] + (indptrs[-1][-1] - b.indptr[0]))
        return cls(
            np.concatenate(indptrs),
            np.concatenate([b.indices for b in blocks]),
            np.concatenate([b.data for b in blocks]),
            n_cols,
            check=False,
        )

    # -- shape / inspection ------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self.indptr.size - 1

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        return self.indices.size

    def row_lengths(self) -> np.ndarray:
        """Non-zero count per row."""
        return np.diff(self.indptr)

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"

    def validate(self) -> None:
        """Raise ValueError if the structure is inconsistent."""
        if self.indptr.size < 1 or self.indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indptr[-1] != self.indices.size:
            raise ValueError(
                f"indptr[-1]={int(self.indptr[-1])} != nnz={self.indices.size}"
            )
        if self.indices.size != self.data.size:
            raise ValueError("indices and data lengths differ")
        if self.indices.size:
            if int(self.indices.min()) < 0 or int(self.indices.max()) >= self.n_cols:
                raise ValueError("column index out of range")

    # -- row access ---------------------------------------------------------

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Views of ``(column_ids, values)`` for row ``i``."""
        s, e = int(self.indptr[i]), int(self.indptr[i + 1])
        return self.indices[s:e], self.data[s:e]

    def gather_rows(self, row_ids: np.ndarray) -> "CSRMatrix":
        """A new CSRMatrix containing the given rows (in the given order).

        This is the Step-Q3 "load candidate data items" operation: the rows
        are copied into a fresh contiguous block, mirroring the cache-line
        reads of the paper.
        """
        row_ids = np.asarray(row_ids, dtype=np.int64)
        starts = self.indptr[row_ids]
        lengths = self.indptr[row_ids + 1] - starts
        new_indptr = np.zeros(row_ids.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=new_indptr[1:])
        take = ranges_to_indices(starts, lengths)
        return CSRMatrix(
            new_indptr, self.indices[take], self.data[take], self.n_cols, check=False
        )

    def slice_rows(self, start: int, stop: int) -> "CSRMatrix":
        """Contiguous row slice ``[start, stop)`` (zero-copy for indices/data)."""
        if not 0 <= start <= stop <= self.n_rows:
            raise IndexError(f"slice [{start}, {stop}) out of range 0..{self.n_rows}")
        s, e = int(self.indptr[start]), int(self.indptr[stop])
        return CSRMatrix(
            self.indptr[start : stop + 1] - s,
            self.indices[s:e],
            self.data[s:e],
            self.n_cols,
            check=False,
        )

    # -- conversions ---------------------------------------------------------

    def to_dense(self) -> np.ndarray:
        """Dense float32 array (test/debug helper; beware memory)."""
        out = np.zeros(self.shape, dtype=np.float32)
        row_ids = np.repeat(np.arange(self.n_rows), self.row_lengths())
        # += handles duplicate columns within a row like scipy does.
        np.add.at(out, (row_ids, self.indices), self.data)
        return out

    def to_scipy(self):
        """Convert to ``scipy.sparse.csr_matrix`` (for cross-checks in tests)."""
        from scipy.sparse import csr_matrix

        return csr_matrix(
            (self.data, self.indices, self.indptr), shape=self.shape
        )

    def row_norms(self) -> np.ndarray:
        """L2 norm of each row."""
        sq = self.data.astype(np.float64) ** 2
        sums = np.zeros(self.n_rows, dtype=np.float64)
        row_ids = np.repeat(np.arange(self.n_rows), self.row_lengths())
        np.add.at(sums, row_ids, sq)
        return np.sqrt(sums)

    def normalized(self) -> "CSRMatrix":
        """Return a copy with each non-empty row scaled to unit L2 norm."""
        norms = self.row_norms()
        scale = np.ones(self.n_rows, dtype=np.float64)
        nonzero = norms > 0
        scale[nonzero] = 1.0 / norms[nonzero]
        per_nnz = np.repeat(scale, self.row_lengths())
        return CSRMatrix(
            self.indptr,
            self.indices,
            (self.data.astype(np.float64) * per_nnz).astype(np.float32),
            self.n_cols,
            check=False,
        )


def ranges_to_indices(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ranges ``[starts[i], starts[i]+lengths[i])`` vectorized.

    Single-cumsum formulation: the output is 1 everywhere except at each
    range boundary, where it jumps to that range's start; a prefix sum then
    reconstructs every index with one full-length pass.  ``starts`` must be
    int64 (entry/indptr offsets are); ``lengths`` may be any integer dtype.

    This is the shared flat-gather builder for every segmented kernel (row
    gathering here, bucket gathering in ``core.tables``, the batch dot
    kernel in ``sparse.ops``).
    """
    ends = np.cumsum(lengths, dtype=np.int64)
    total = int(ends[-1]) if ends.size else 0
    if total == 0:
        return np.empty(0, dtype=np.int64)
    bounds = ends - lengths
    nz = lengths > 0
    firsts = bounds[nz]
    sv = starts[nz]
    lv = lengths[nz]
    jump = np.empty(firsts.size, dtype=np.int64)
    jump[0] = sv[0]
    jump[1:] = sv[1:] - (sv[:-1] + lv[:-1] - 1)
    take = np.ones(total, dtype=np.int64)
    take[firsts] = jump
    np.cumsum(take, out=take)
    return take
