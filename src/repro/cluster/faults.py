"""Fault injection for the cluster transport (chaos testing).

A real fabric fails in more ways than a hard node kill: requests vanish,
replies tear mid-frame, links stall.  :class:`FaultyConnection` wraps a
:class:`~repro.cluster.transport.Connection` and injects those failures
*client-side*, deterministically from a seeded RNG, so the retry /
failover / circuit-breaker machinery can be driven through every failure
mode in ordinary unit tests — no proxy processes, no timing races.

:class:`FaultPlan` is the knob panel.  Rates draw from the plan's seeded
RNG on every request; the one-shot triggers (``drop_next_send``,
``tear_next_reply``, ``call_after_send``) arm exactly one deterministic
fault, which is how the targeted tests stage "server killed between
request write and reply read" without sleeping.

The plan outlives any one connection on purpose: the client handle
re-wraps its replacement connection with the same plan after a
reconnect, so a drop_rate keeps applying across retries (and the RNG
stream keeps advancing — sequences stay reproducible from the seed).

Injected failures are indistinguishable from real ones by design: a
dropped send raises :class:`ConnectionError` and closes the underlying
socket (the server sees EOF and returns to accept), a torn reply closes
the socket after the request went out (the request may well have been
*applied* — exactly the ambiguity real torn frames have), and ``delay_ms``
stalls before the reply read, which a short deadline then converts into a
:class:`TimeoutError`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.cluster.transport import Connection, TransportStats

__all__ = ["FaultPlan", "FaultyConnection", "InjectedFault"]


class InjectedFault(ConnectionError):
    """A connection failure injected by a :class:`FaultPlan`."""


@dataclass
class FaultPlan:
    """Seeded fault configuration shared across a handle's connections.

    Rates are per-request probabilities; ``delay_ms`` applies to every
    reply.  The ``*_next`` one-shot triggers fire once, before any rate
    draws, and are safe to arm from the test thread while requests are in
    flight elsewhere (a lock guards the trigger state).
    """

    seed: int = 0
    #: probability a request is dropped before its bytes go out.
    drop_rate: float = 0.0
    #: probability the reply is torn (socket closed after the send).
    torn_reply_rate: float = 0.0
    #: fixed stall before reading each reply, in milliseconds.
    delay_ms: float = 0.0
    _rng: np.random.Generator = field(init=False, repr=False)
    _lock: threading.Lock = field(init=False, repr=False)
    _drop_next: bool = field(init=False, default=False, repr=False)
    _tear_next: bool = field(init=False, default=False, repr=False)
    _after_send: list = field(init=False, default_factory=list, repr=False)
    #: counts of injected faults by kind, for test assertions.
    injected: dict = field(init=False, default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._lock = threading.Lock()

    # -- one-shot triggers -------------------------------------------------

    def drop_next_send(self) -> None:
        """Arm: the next request is dropped before it is written."""
        with self._lock:
            self._drop_next = True

    def tear_next_reply(self) -> None:
        """Arm: the next request goes out, then the connection tears
        before the reply is read (the server may have applied it)."""
        with self._lock:
            self._tear_next = True

    def call_after_send(self, fn: Callable[[], None]) -> None:
        """Arm: run ``fn`` once, right after the next request's bytes hit
        the wire — e.g. kill the server process between write and read."""
        with self._lock:
            self._after_send.append(fn)

    # -- draws (called by FaultyConnection) --------------------------------

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def _take_drop(self) -> bool:
        with self._lock:
            if self._drop_next:
                self._drop_next = False
                self._count("drop")
                return True
            if self.drop_rate > 0 and self._rng.random() < self.drop_rate:
                self._count("drop")
                return True
            return False

    def _take_tear(self) -> bool:
        with self._lock:
            if self._tear_next:
                self._tear_next = False
                self._count("torn_reply")
                return True
            if (
                self.torn_reply_rate > 0
                and self._rng.random() < self.torn_reply_rate
            ):
                self._count("torn_reply")
                return True
            return False

    def _take_after_send(self) -> list:
        with self._lock:
            hooks, self._after_send = self._after_send, []
            return hooks


class FaultyConnection:
    """A :class:`Connection` with a :class:`FaultPlan` between it and the
    caller.  Same surface as ``Connection``; drop-in inside the client
    handle."""

    def __init__(self, conn: Connection, plan: FaultPlan) -> None:
        self._conn = conn
        self.plan = plan
        #: True once the *next* recv should find a torn socket.
        self._torn = False

    @property
    def stats(self) -> TransportStats:
        return self._conn.stats

    @property
    def closed(self) -> bool:
        return self._conn.closed

    def send_message(
        self, code: int, meta=None, arrays=(), *, deadline=None
    ) -> int:
        if self.plan._take_drop():
            self._conn.close()
            raise InjectedFault("injected: request dropped before send")
        tear = self.plan._take_tear()
        n = self._conn.send_message(code, meta, arrays, deadline=deadline)
        for hook in self.plan._take_after_send():
            hook()
        if tear:
            # The request is on the wire; the reply will never arrive.
            self._conn.close()
            self._torn = True
        return n

    def recv_message(self, *, deadline=None):
        if self._torn:
            self._torn = False
            raise InjectedFault("injected: reply torn mid-frame")
        if self.plan.delay_ms > 0:
            import time

            time.sleep(self.plan.delay_ms / 1e3)
        return self._conn.recv_message(deadline=deadline)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "FaultyConnection":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
