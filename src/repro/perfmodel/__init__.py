"""The Section 7 performance model.

Three layers:

* :mod:`repro.perfmodel.collisions` — the probability theory: ``p(t)``,
  ``P'(t, k, m)`` and the sampled estimators of ``E[#collisions]`` and
  ``E[#unique]`` (Equations 7.1/7.2).
* :mod:`repro.perfmodel.cost` — the hardware cost model: per-phase
  cycles/item on a :class:`HardwareSpec` (the paper's Xeon E5-2670 constants
  are shipped), combined with collision statistics into predicted query and
  construction times.
* :mod:`repro.perfmodel.calibrate` + :mod:`repro.perfmodel.tuner` — host
  calibration of the same constants in seconds (because this implementation
  runs on Python/numpy, not AVX C++), and the (k, m) enumeration of
  Section 7.3 that minimizes predicted query time subject to the recall and
  memory constraints.
"""

from repro.perfmodel.calibrate import HostCostModel, calibrate_host
from repro.perfmodel.collisions import (
    collision_probability,
    estimate_collision_stats,
    pair_collision_probability,
    recall_probability,
)
from repro.perfmodel.cost import HardwareSpec, PAPER_HARDWARE, PaperCostModel
from repro.perfmodel.tuner import ParameterTuner, TuningCandidate

__all__ = [
    "HardwareSpec",
    "HostCostModel",
    "PAPER_HARDWARE",
    "PaperCostModel",
    "ParameterTuner",
    "TuningCandidate",
    "calibrate_host",
    "collision_probability",
    "estimate_collision_stats",
    "pair_collision_probability",
    "recall_probability",
]
