"""``StreamingPLSH`` — one node's full streaming stack (Sections 4 & 6).

A node owns a static :class:`PLSHIndex`, a :class:`DeltaTable`, and a
:class:`DeletionFilter`.  Inserts append to the delta; when the delta
reaches ``eta x capacity`` it is merged into the static structure (queries
arriving during a merge are buffered by the caller — the merge here is
synchronous).  Queries run against both structures and the answers are
combined; candidates from either side are screened against the deletion
bitvector before the distance computation.

Local id space: static rows occupy ``[0, n_static)``; delta row ``d`` is
addressed as ``n_static + d``.  A merge folds delta rows into the static
range in insertion order, so local ids are *stable under merge* — a
property the cluster's global-id mapping and the tests rely on.
"""

from __future__ import annotations

import numpy as np

from repro.core.candidates import mask_segments, unique_segments
from repro.core.distance import angular_distance
from repro.core.hashing import AllPairsHasher
from repro.core.index import PLSHIndex
from repro.core.query import QueryResult
from repro.parallel import ExecutorCache, default_workers, shard_bounds
from repro.params import PLSHParams
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import row_dots_dense, row_dots_dense_batch
from repro.streaming.deletion import DeletionFilter
from repro.streaming.delta import DeltaTable
from repro.streaming.merge import merge_into_static
from repro.utils.timing import StageTimes

__all__ = ["StreamingPLSH", "CapacityError"]


class CapacityError(RuntimeError):
    """Raised when an insert would exceed the node's capacity."""


class StreamingPLSH:
    """A capacity-bounded streaming PLSH node."""

    def __init__(
        self,
        dim: int,
        params: PLSHParams,
        capacity: int,
        *,
        delta_fraction: float = 0.1,
        auto_merge: bool = True,
        hasher: AllPairsHasher | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0.0 < delta_fraction <= 1.0:
            raise ValueError(
                f"delta_fraction must be in (0, 1], got {delta_fraction}"
            )
        self.dim = dim
        self.params = params
        self.capacity = capacity
        self.delta_fraction = delta_fraction
        self.auto_merge = auto_merge
        self.hasher = hasher if hasher is not None else AllPairsHasher(params, dim)
        self.static = PLSHIndex(dim, params, hasher=self.hasher)
        self.static.build(CSRMatrix.empty(dim))
        self.delta = DeltaTable(dim, params, self.hasher)
        self.deletions = DeletionFilter(capacity)
        self.n_merges = 0
        self.times = StageTimes()
        #: persistent executors for parallel batch queries.  A fork pool
        #: snapshots the node copy-on-write, so *any* mutation
        #: (insert/merge/delete/retire) invalidates the cache and the next
        #: parallel batch re-forks; between mutations — the read-heavy
        #: common case — pools stay warm across batches.
        self._executors = ExecutorCache(self)

    # -- executor lifecycle --------------------------------------------------

    def _executor(self, workers: int, backend: str | None):
        return self._executors.get(workers, backend)

    def _invalidate_executors(self) -> None:
        """Drop pooled workers whose copy-on-write snapshot went stale."""
        self._executors.close()

    def close(self) -> None:
        """Release persistent worker pools (idempotent); also closes the
        static engine's pools.  Nodes queried only with ``workers == 1``
        hold no pools and need no close."""
        self._invalidate_executors()
        if self.static.engine is not None:
            self.static.engine.close()

    def __enter__(self) -> "StreamingPLSH":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- sizes -------------------------------------------------------------

    @property
    def n_static(self) -> int:
        return self.static.n_items

    @property
    def n_delta(self) -> int:
        return len(self.delta)

    @property
    def n_total(self) -> int:
        return self.n_static + self.n_delta

    @property
    def n_live(self) -> int:
        return self.n_total - self.deletions.n_deleted

    @property
    def is_full(self) -> bool:
        return self.n_total >= self.capacity

    @property
    def delta_threshold(self) -> int:
        """Delta size that triggers a merge: ``eta * capacity``."""
        return max(1, int(self.delta_fraction * self.capacity))

    # -- updates ------------------------------------------------------------

    def insert_batch(self, vectors: CSRMatrix) -> np.ndarray:
        """Insert rows; returns their node-local ids.

        Raises :class:`CapacityError` if the batch does not fit — the
        cluster layer is responsible for advancing the insert window and
        retiring old nodes (Section 6), a node never evicts by itself.
        """
        if self.n_total + vectors.n_rows > self.capacity:
            raise CapacityError(
                f"insert of {vectors.n_rows} rows exceeds capacity "
                f"{self.capacity} (current {self.n_total})"
            )
        with self.times.stage("insert"):
            local = self.delta.insert_batch(vectors) + self.n_static
        self._invalidate_executors()
        if self.auto_merge and self.n_delta >= self.delta_threshold:
            self.merge_now()
        return local

    def merge_now(self) -> None:
        """Merge the delta table into the static structure."""
        if self.n_delta == 0:
            return
        with self.times.stage("merge"):
            old = self.static
            self.static = merge_into_static(old, self.delta)
            self.delta.clear()
            self.n_merges += 1
        self._invalidate_executors()
        if old.engine is not None:
            old.engine.close()

    def delete(self, local_ids: np.ndarray | int) -> int:
        """Tombstone rows by node-local id; returns newly deleted count."""
        n = self.deletions.delete(local_ids)
        if n:
            self._invalidate_executors()
        return n

    def retire(self) -> None:
        """Erase the node wholesale (the paper's expiration mechanism)."""
        self.close()
        self.static = PLSHIndex(self.dim, self.params, hasher=self.hasher)
        self.static.build(CSRMatrix.empty(self.dim))
        self.delta.clear()
        self.deletions.reset()

    # -- queries -------------------------------------------------------------

    def query(
        self,
        q_cols: np.ndarray,
        q_vals: np.ndarray,
        *,
        radius: float | None = None,
    ) -> QueryResult:
        """R-near neighbors across static + delta, minus deletions."""
        radius = self.params.radius if radius is None else radius
        q_cols = np.asarray(q_cols, dtype=np.int64)
        q_vals = np.asarray(q_vals, dtype=np.float32)
        keys = self._query_keys(q_cols, q_vals)  # hash once, use twice

        with self.times.stage("query_static"):
            exclude = self.deletions.mask(self.n_static) if self.n_static else None
            static_res = (
                self.static.query(
                    q_cols, q_vals, radius=radius, exclude=exclude, keys=keys
                )
                if self.n_static
                else QueryResult(
                    np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32)
                )
            )
        with self.times.stage("query_delta"):
            delta_res = self._query_delta(q_cols, q_vals, radius, keys)
        return QueryResult(
            np.concatenate([static_res.indices, delta_res.indices]),
            np.concatenate([static_res.distances, delta_res.distances]),
        )

    def query_batch(
        self,
        queries: CSRMatrix,
        *,
        radius: float | None = None,
        mode: str | None = None,
        workers: int | None = None,
        backend: str | None = None,
    ) -> list[QueryResult]:
        """Batch R-near-neighbor queries across static + delta.

        ``mode="vectorized"`` (the default) hashes the whole batch *once*
        in the parent and shares the ``(B, L)`` key matrix between the
        static and delta structures; the static side runs the batch kernel
        and the delta side the segmented dedup / blocked-dot pipeline, each
        with a single vectorized deletion-filter screen.  ``mode="loop"``
        is the per-query path, kept for ablation (always serial).

        ``workers > 1`` shards the batch over the :mod:`repro.parallel`
        layer: each worker answers a contiguous sub-block against *both*
        structures with the same key slice, so the static/delta split —
        and therefore every merge boundary — is identical in every shard
        and results are bit-identical to ``workers=1``.  ``backend`` picks
        the executor (persistent fork pool on Linux by default, threads
        otherwise); the pool snapshots the node at fork time and is
        re-forked automatically after any insert/merge/delete.  ``None``
        defers to ``PLSH_WORKERS``.  Worker engine counters and per-stage
        times are merged back into the static engine's ``QueryStats`` and
        node times, so Figure 5/11 breakdowns stay real under parallelism.
        """
        if mode is None:
            mode = "vectorized"
        if mode == "loop":
            return [
                self.query(*queries.row(r), radius=radius)
                for r in range(queries.n_rows)
            ]
        if mode != "vectorized":
            raise ValueError(
                f"unknown mode {mode!r}; expected 'vectorized' or 'loop'"
            )
        radius = self.params.radius if radius is None else radius
        n = queries.n_rows
        if n == 0:
            return []
        if workers is None:
            workers = default_workers()
        # Hash once, use everywhere (static + delta + every shard share
        # the key matrix).
        u = self.hasher.hash_functions(queries)
        keys = self.hasher.table_keys_batch(u)
        if workers <= 1:
            return self._query_batch_shard(queries, radius, keys)

        bounds = shard_bounds(n, workers)
        tasks = [
            (queries.slice_rows(int(b0), int(b1)), keys[b0:b1], radius)
            for b0, b1 in zip(bounds[:-1], bounds[1:])
        ]
        ex = self._executor(workers, backend)
        parts = ex.run(_node_shard_worker, tasks)
        results: list[QueryResult] = []
        engine = self.static.engine
        for payload, (counters, eng_stages), node_stages in parts:
            results.extend(
                QueryResult(indices, distances)
                for indices, distances in payload
            )
            if engine is not None:
                nq, coll, uniq, match = counters
                engine.stats.n_queries += nq
                engine.stats.n_collisions += coll
                engine.stats.n_unique += uniq
                engine.stats.n_matches += match
                for name, secs in eng_stages.items():
                    engine.stats.stage_times.add(name, secs)
            for name, secs in node_stages.items():
                self.times.add(name, secs)
        return results

    def _query_batch_shard(
        self,
        queries: CSRMatrix,
        radius: float,
        keys: np.ndarray,
        *,
        engine=None,
        times: StageTimes | None = None,
    ) -> list[QueryResult]:
        """Answer one contiguous sub-block given precomputed keys.

        This is the unit of work the parallel layer distributes: static
        batch kernel + delta pipeline + per-query concatenation, all
        against the same key slice.  ``engine`` lets a worker substitute a
        private clone of the static engine (private dedup/buffers/stats);
        ``times`` likewise redirects stage accounting to a private
        ``StageTimes`` the parent merges later.
        """
        n = queries.n_rows
        times = self.times if times is None else times
        empty = QueryResult(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32)
        )
        with times.stage("query_static"):
            if self.n_static:
                if engine is None:
                    engine = self.static.engine
                exclude = self.deletions.mask(self.n_static)
                static_res = engine.query_batch(
                    queries, radius=radius, exclude=exclude, keys=keys,
                    mode="vectorized", workers=1,
                )
            else:
                static_res = [empty] * n
        with times.stage("query_delta"):
            delta_res = self._query_delta_batch(queries, radius, keys)
        return [
            QueryResult(
                np.concatenate([s.indices, d.indices]),
                np.concatenate([s.distances, d.distances]),
            )
            for s, d in zip(static_res, delta_res)
        ]

    def _query_keys(self, q_cols: np.ndarray, q_vals: np.ndarray) -> np.ndarray:
        """Step Q1 for this node: the L table keys of the query."""
        q = CSRMatrix(
            np.asarray([0, q_cols.size], dtype=np.int64),
            q_cols.astype(np.int32),
            q_vals,
            self.dim,
            check=False,
        )
        u_row = self.hasher.hash_functions(q)[0]
        return self.hasher.table_keys_for_query(u_row)

    def _query_delta(
        self,
        q_cols: np.ndarray,
        q_vals: np.ndarray,
        radius: float,
        keys: np.ndarray,
    ) -> QueryResult:
        """Q2-Q4 against the delta bins (ids offset by ``n_static``)."""
        if self.n_delta == 0:
            return QueryResult(
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32)
            )
        collisions = self.delta.collisions(keys)
        if collisions.size == 0:
            return QueryResult(
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32)
            )
        unique = np.unique(collisions)
        # Deletion screen (delta rows live at n_static + local in id space).
        live = ~self.deletions.is_deleted(unique + self.n_static)
        unique = unique[live]
        vectors = self.delta.vectors()
        q_dense = np.zeros(self.dim, dtype=np.float32)
        q_dense[q_cols] = q_vals
        dots = row_dots_dense(vectors, unique, q_dense)
        dists = angular_distance(dots)
        within = dists <= radius
        return QueryResult(unique[within] + self.n_static, dists[within])

    def _query_delta_batch(
        self, queries: CSRMatrix, radius: float, keys: np.ndarray
    ) -> list[QueryResult]:
        """Q2-Q4 against the delta bins for a whole batch (segmented)."""
        n = queries.n_rows
        empty = QueryResult(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32)
        )
        if self.n_delta == 0:
            return [empty] * n
        values, raw_offsets = self.delta.collisions_batch(keys)
        if values.size == 0:
            return [empty] * n
        cand, offsets = unique_segments(values, raw_offsets, self.n_delta)
        # Vectorized deletion screen: one bitvector test over every
        # candidate of the batch (delta rows live at n_static + local).
        if cand.size:
            live = ~self.deletions.is_deleted(cand + self.n_static)
            offsets = mask_segments(offsets, live)
            cand = cand[live]
        dots = row_dots_dense_batch(self.delta.vectors(), cand, offsets, queries)
        dists = angular_distance(dots)
        within = dists <= radius
        out_offsets = mask_segments(offsets, within)
        out_ids = cand[within] + self.n_static
        out_dists = dists[within]
        return [
            QueryResult(
                out_ids[out_offsets[b] : out_offsets[b + 1]],
                out_dists[out_offsets[b] : out_offsets[b + 1]],
            )
            for b in range(n)
        ]


def _node_shard_worker(
    node: StreamingPLSH, queries: CSRMatrix, keys: np.ndarray, radius: float
):
    """Executor task: answer one shard against both node structures.

    ``node`` is the executor state (the fork()ed copy-on-write snapshot,
    or the live node for in-process backends).  The static side runs on a
    private engine clone and stage times go to a private ``StageTimes``,
    so concurrent shards never contend; both are returned as primitives
    for the parent to merge.
    """
    engine = node.static.engine
    eng = engine._clone() if (node.n_static and engine is not None) else None
    times = StageTimes()
    results = node._query_batch_shard(
        queries, radius, keys, engine=eng, times=times
    )
    if eng is not None:
        s = eng.stats
        counters = (s.n_queries, s.n_collisions, s.n_unique, s.n_matches)
        eng_stages = s.stage_times.as_dict()
    else:
        counters = (0, 0, 0, 0)
        eng_stages = {}
    return (
        [(r.indices, r.distances) for r in results],
        (counters, eng_stages),
        times.as_dict(),
    )
